"""Seeded synthetic NDT load calibrated to Fig. 11.

Every country has a target median-download curve defined by log-linearly
interpolated anchors.  The generator draws per-test speeds from a
lognormal distribution whose median equals the target (the median of
``LogNormal(mu, sigma)`` is ``exp(mu)``), which reproduces both the
paper's median trajectories and the heavy upper tail that motivates the
median-vs-mean ablation.

Calibration anchors come straight from Section 7.1: Venezuela below
1 Mbps from 2010 through late 2021 recovering to 2.93 Mbps by July 2023;
Uruguay at 47.33, Brazil 32.44, Chile 25.25, Mexico 18.66 and Argentina
15.48 in July 2023, each passing 2.93 Mbps at the historical month the
paper names (Nov 2013, Sep 2019, Jun 2017, Nov 2013, Apr 2018).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.mlab.columns import NDTColumns
from repro.mlab.ndt import NDTResult
from repro.obs import get_registry
from repro.timeseries.month import Month, month_range

WINDOW_START = Month(2007, 7)
WINDOW_END = Month(2024, 1)


def _a(text: str, value: float) -> tuple[Month, float]:
    return (Month.parse(text), value)


#: Per-country median anchors (log-linear interpolation between them).
_MEDIAN_ANCHORS: dict[str, tuple[tuple[Month, float], ...]] = {
    "VE": (
        _a("2007-07", 0.52), _a("2009-06", 0.60), _a("2012-01", 0.65),
        _a("2016-01", 0.55), _a("2019-01", 0.58), _a("2021-10", 0.80),
        _a("2022-02", 1.30), _a("2022-06", 1.80), _a("2023-07", 2.93),
        _a("2024-01", 3.10),
    ),
    "UY": (
        _a("2007-07", 0.55), _a("2013-11", 2.93), _a("2018-01", 15.0),
        _a("2023-07", 47.33), _a("2024-01", 50.0),
    ),
    "BR": (
        _a("2007-07", 0.50), _a("2013-01", 2.00), _a("2019-09", 2.93),
        _a("2021-06", 12.0), _a("2023-07", 32.44), _a("2024-01", 34.0),
    ),
    "CL": (
        _a("2007-07", 0.60), _a("2012-01", 1.80), _a("2017-06", 2.93),
        _a("2020-06", 10.0), _a("2023-07", 25.25), _a("2024-01", 27.0),
    ),
    "AR": (
        _a("2007-07", 0.55), _a("2013-01", 1.80), _a("2018-04", 2.93),
        _a("2021-01", 8.0), _a("2023-07", 15.48), _a("2024-01", 16.5),
    ),
    "MX": (
        _a("2007-07", 0.60), _a("2013-11", 2.93), _a("2019-01", 8.0),
        _a("2023-07", 18.66), _a("2024-01", 19.5),
    ),
}

#: Generic anchors for the rest of the region: (2007, 2015, 2023-07) medians.
_GENERIC_ANCHORS: dict[str, tuple[float, float, float]] = {
    "CO": (0.55, 2.6, 22.0),
    "PE": (0.50, 2.2, 20.0),
    "EC": (0.45, 2.0, 19.0),
    "PA": (0.60, 3.0, 24.0),
    "CR": (0.55, 2.8, 21.0),
    "DO": (0.50, 2.0, 14.0),
    "PY": (0.40, 1.6, 15.0),
    "BO": (0.35, 1.2, 10.0),
    "GT": (0.45, 1.6, 12.0),
    "HN": (0.40, 1.4, 10.0),
    "NI": (0.35, 1.2, 8.0),
    "SV": (0.45, 1.6, 12.0),
    "TT": (0.60, 3.0, 22.0),
    "CU": (0.20, 0.5, 2.5),
    "HT": (0.25, 0.7, 4.0),
    "GY": (0.35, 1.2, 12.0),
    "SR": (0.40, 1.5, 14.0),
    "BZ": (0.40, 1.5, 12.0),
    "CW": (0.70, 4.0, 28.0),
    "AW": (0.70, 4.0, 26.0),
    "GF": (0.60, 3.5, 24.0),
    "BQ": (0.60, 3.0, 20.0),
}

#: Lognormal shape parameter (heavy tail typical of crowd-sourced tests).
SIGMA = 0.9

#: Venezuelan per-network speed multipliers, active once the fibre
#: newcomers launch (Section 7.1: CANTV's legacy plans stagnate while new
#: entrants sell up-to-50-Mbps services).  The generator renormalises the
#: remaining market so the country median stays on its calibrated curve.
VE_NETWORK_MULTIPLIERS: dict[int, float] = {
    8048: 0.75,     # CANTV legacy copper plans
    61461: 1.60,    # Airtek (fibre newcomer)
    264628: 1.50,   # Fibex (fibre newcomer)
}
#: Month the Venezuelan network multipliers switch on.
VE_MULTIPLIER_START = Month(2021, 1)


def _anchors_for(country: str) -> tuple[tuple[Month, float], ...]:
    cc = country.upper()
    if cc in _MEDIAN_ANCHORS:
        return _MEDIAN_ANCHORS[cc]
    if cc in _GENERIC_ANCHORS:
        v2007, v2015, v2023 = _GENERIC_ANCHORS[cc]
        return (
            _a("2007-07", v2007),
            (Month(2015, 1), v2015),
            (Month(2023, 7), v2023),
            (Month(2024, 1), v2023 * 1.05),
        )
    raise KeyError(f"no NDT calibration for country {country!r}")


def calibrated_countries() -> list[str]:
    """All countries the load model can generate tests for."""
    return sorted(set(_MEDIAN_ANCHORS) | set(_GENERIC_ANCHORS))


def median_target(country: str, month: Month) -> float:
    """The calibrated median download speed (Mbps) for a country-month.

    Values are log-linearly interpolated between anchors and clamped flat
    outside the anchored range.
    """
    anchors = _anchors_for(country)
    if month <= anchors[0][0]:
        return anchors[0][1]
    for (m0, v0), (m1, v1) in zip(anchors, anchors[1:]):
        if m0 <= month <= m1:
            frac = m0.months_until(month) / m0.months_until(m1)
            return math.exp(math.log(v0) + frac * (math.log(v1) - math.log(v0)))
    return anchors[-1][1]


@dataclass(frozen=True)
class NDTLoadModel:
    """Configuration of the synthetic test load.

    Attributes:
        seed: RNG seed; identical seeds give identical loads.
        tests_per_month: Samples drawn per country-month.
        start: First generated month.
        end: Last generated month.
    """

    seed: int = 20240804
    tests_per_month: int = 40
    start: Month = WINDOW_START
    end: Month = WINDOW_END


def _market_mixture(cc: str) -> tuple[list[int], list[float]]:
    """The ASN population and draw weights of one country's test load."""
    from repro.apnic.synthetic import synthesize_populations

    estimates = synthesize_populations()
    entries = estimates.country_entries(cc)
    if not entries:
        return [0], [1.0]
    total = sum(e.users for e in entries)
    return [e.asn for e in entries], [e.users / total for e in entries]


def _ve_multipliers(asns: list[int], weights: list[float]) -> np.ndarray:
    """Log-mean-neutral per-ASN multipliers for the Venezuelan market.

    The named networks get their scripted factors; the remaining market is
    scaled so the weighted mean log-multiplier is zero, keeping the country
    median on its calibrated curve.
    """
    log_named = sum(
        w * math.log(VE_NETWORK_MULTIPLIERS[a])
        for a, w in zip(asns, weights)
        if a in VE_NETWORK_MULTIPLIERS
    )
    rest_weight = sum(
        w for a, w in zip(asns, weights) if a not in VE_NETWORK_MULTIPLIERS
    )
    rest_multiplier = math.exp(-log_named / rest_weight) if rest_weight else 1.0
    return np.array(
        [VE_NETWORK_MULTIPLIERS.get(a, rest_multiplier) for a in asns]
    )


def synthesize_ndt_columns(model: NDTLoadModel = NDTLoadModel()) -> NDTColumns:
    """Generate the synthetic test load as packed columns.

    Speeds are lognormal around the calibrated median; RTT and loss are
    drawn with plausible access-network statistics; upload tracks download
    at roughly a third.  Each test is attributed to an access network
    drawn by market share, and from 2021 the Venezuelan networks diverge
    (CANTV below the country curve, the fibre newcomers above it).

    Seed-stream contract: the RNG draws happen per country-month batch in
    the exact order the historical row generator used (choice, lognormal,
    gamma, beta, integers, uniform), so the columns carry bit-for-bit the
    same doubles the row-by-row code yielded — only the per-row object
    construction is gone.  ``tests/mlab/test_seed_stream.py`` pins this
    against the pre-columnar implementation.

    Emitted rows land in the ``mlab.ndt.rows_emitted`` counter, tallied
    per country-month batch (the same granularity the numpy draws use).
    """
    rng = np.random.default_rng(model.seed)
    countries = calibrated_countries()
    mixtures = {cc: _market_mixture(cc) for cc in countries}
    ve_asns, ve_weights = mixtures["VE"]
    ve_mults = _ve_multipliers(ve_asns, ve_weights)
    asn_pools = {cc: np.asarray(asns, dtype=np.int64) for cc, (asns, _w) in mixtures.items()}
    country_code = {cc: i for i, cc in enumerate(countries)}
    n = model.tests_per_month
    chunks: dict[str, list[np.ndarray]] = {name: [] for name in NDTColumns.COLUMNS}
    emitted = 0
    for month in month_range(model.start, model.end):
        ordinal = month.ordinal()
        for cc in countries:
            median = median_target(cc, month)
            mu = math.log(median)
            asns, weights = mixtures[cc]
            asn_idx = rng.choice(len(asns), size=n, p=weights)
            mus = np.full(n, mu)
            if cc == "VE" and month >= VE_MULTIPLIER_START:
                mus = mus + np.log(ve_mults[asn_idx])
            speeds = rng.lognormal(mean=0.0, sigma=SIGMA, size=n)
            speeds = speeds * np.exp(mus)
            rtts = rng.gamma(shape=4.0, scale=12.0, size=n)
            losses = rng.beta(1.0, 200.0, size=n)
            days = rng.integers(1, 28, size=n)
            uploads = speeds * rng.uniform(0.25, 0.45, size=n)
            emitted += n
            chunks["month_ordinal"].append(np.full(n, ordinal, dtype=np.int32))
            chunks["day"].append(days.astype(np.uint8))
            chunks["country_idx"].append(
                np.full(n, country_code[cc], dtype=np.uint16)
            )
            chunks["asn"].append(asn_pools[cc][asn_idx])
            chunks["download_mbps"].append(speeds)
            chunks["upload_mbps"].append(uploads)
            chunks["min_rtt_ms"].append(rtts)
            chunks["loss_rate"].append(losses)
    if emitted:
        get_registry().counter("mlab.ndt.rows_emitted").inc(emitted)
    empty_dtypes = {
        "month_ordinal": np.int32,
        "day": np.uint8,
        "country_idx": np.uint16,
        "asn": np.int64,
    }
    columns = {
        name: np.concatenate(parts)
        if parts
        else np.empty(0, dtype=empty_dtypes.get(name, np.float64))
        for name, parts in chunks.items()
    }
    return NDTColumns(countries=countries, **columns)


def synthesize_ndt_tests(model: NDTLoadModel = NDTLoadModel()) -> Iterator[NDTResult]:
    """Generate the synthetic test stream, month-major then country order.

    Record-view wrapper over :func:`synthesize_ndt_columns`, kept for
    callers that want the historical ``Iterator[NDTResult]`` shape.  The
    stream is fully deterministic for a given model configuration.
    """
    return iter(synthesize_ndt_columns(model))
