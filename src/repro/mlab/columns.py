"""Packed column form of the synthetic NDT test load.

One :class:`NDTColumns` batch replaces ``list[NDTResult]``: eight
parallel arrays (month ordinal, day, country index, ASN, four float
metrics) plus a country string pool.  Rows come back as genuine
:class:`~repro.mlab.ndt.NDTResult` records on demand, so every existing
consumer keeps working, while the aggregations in
:mod:`repro.mlab.aggregate` group directly over the arrays.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterator

import numpy as np

from repro.columnar import ColumnBatch
from repro.mlab.ndt import NDTResult
from repro.timeseries.month import Month


class NDTColumns(ColumnBatch):
    """The NDT test load as packed columns."""

    kind = "mlab.ndt/1"
    COLUMNS = (
        "month_ordinal",
        "day",
        "country_idx",
        "asn",
        "download_mbps",
        "upload_mbps",
        "min_rtt_ms",
        "loss_rate",
    )

    def __init__(
        self,
        countries: list[str],
        month_ordinal: np.ndarray,
        day: np.ndarray,
        country_idx: np.ndarray,
        asn: np.ndarray,
        download_mbps: np.ndarray,
        upload_mbps: np.ndarray,
        min_rtt_ms: np.ndarray,
        loss_rate: np.ndarray,
    ):
        self.countries = list(countries)
        self.month_ordinal = month_ordinal
        self.day = day
        self.country_idx = country_idx
        self.asn = asn
        self.download_mbps = download_mbps
        self.upload_mbps = upload_mbps
        self.min_rtt_ms = min_rtt_ms
        self.loss_rate = loss_rate

    def meta(self) -> dict[str, Any]:
        return {"countries": self.countries}

    @classmethod
    def from_columns(
        cls, meta: dict[str, Any], columns: dict[str, np.ndarray]
    ) -> "NDTColumns":
        return cls(countries=list(meta["countries"]), **columns)

    def _record(self, index: int) -> NDTResult:
        ordinal = int(self.month_ordinal[index])
        return NDTResult(
            date=_dt.date(ordinal // 12, ordinal % 12 + 1, int(self.day[index])),
            country=self.countries[int(self.country_idx[index])],
            asn=int(self.asn[index]),
            download_mbps=float(self.download_mbps[index]),
            upload_mbps=float(self.upload_mbps[index]),
            min_rtt_ms=float(self.min_rtt_ms[index]),
            loss_rate=float(self.loss_rate[index]),
        )

    def __iter__(self) -> Iterator[NDTResult]:
        # Bulk tolist() conversions keep full iteration (exports, the
        # ingestion drill) an order of magnitude faster than per-index
        # array item access.
        date = _dt.date
        rows = zip(
            self.month_ordinal.tolist(),
            self.day.tolist(),
            self.country_idx.tolist(),
            self.asn.tolist(),
            self.download_mbps.tolist(),
            self.upload_mbps.tolist(),
            self.min_rtt_ms.tolist(),
            self.loss_rate.tolist(),
        )
        for ordinal, day, cc, asn, down, up, rtt, loss in rows:
            yield NDTResult(
                date=date(ordinal // 12, ordinal % 12 + 1, day),
                country=self.countries[cc],
                asn=asn,
                download_mbps=down,
                upload_mbps=up,
                min_rtt_ms=rtt,
                loss_rate=loss,
            )

    # -- column-plane helpers ------------------------------------------------

    def download_groups(self) -> dict[tuple[str, Month], list[float]]:
        """Download samples grouped per (country, month), generation order.

        Group keys appear in first-occurrence order and each group keeps
        its rows in stream order, so the result is indistinguishable
        from the row-by-row ``dict.setdefault`` accumulation it
        replaces — including the float values, which are the very same
        doubles the generator drew.
        """
        n = len(self)
        if n == 0:
            return {}
        mo = self.month_ordinal
        cc = self.country_idx
        change = np.flatnonzero((mo[1:] != mo[:-1]) | (cc[1:] != cc[:-1])) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [n]))
        downloads = self.download_mbps.tolist()
        groups: dict[tuple[str, Month], list[float]] = {}
        for start, end in zip(starts.tolist(), ends.tolist()):
            key = (
                self.countries[int(cc[start])],
                Month.from_ordinal(int(mo[start])),
            )
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = downloads[start:end]
            else:
                bucket.extend(downloads[start:end])
        return groups

    def asn_downloads(
        self, country: str, start: Month, end: Month
    ) -> dict[int, list[float]]:
        """Download samples per ASN for one country over a month window."""
        cc = country.upper()
        if cc not in self.countries:
            return {}
        cc_code = self.countries.index(cc)
        mask = (
            (self.country_idx == cc_code)
            & (self.month_ordinal >= start.ordinal())
            & (self.month_ordinal <= end.ordinal())
        )
        idx = np.flatnonzero(mask)
        by_asn: dict[int, list[float]] = {}
        for asn, value in zip(
            self.asn[idx].tolist(), self.download_mbps[idx].tolist()
        ):
            by_asn.setdefault(asn, []).append(value)
        return by_asn
