"""Month x country aggregation of NDT tests.

The paper aggregates the raw crowd-sourced tests to monthly per-country
medians; the mean variant exists for the ablation benchmark that shows why
the median is the right choice for heavy-tailed speed-test data.
"""

from __future__ import annotations

import statistics
from typing import Iterable

from repro.mlab.columns import NDTColumns
from repro.mlab.ndt import NDTResult
from repro.timeseries.month import Month
from repro.timeseries.panel import CountryPanel
from repro.timeseries.series import MonthlySeries


def _group(results: Iterable[NDTResult]) -> dict[tuple[str, Month], list[float]]:
    if isinstance(results, NDTColumns):
        # Column plane: group over run boundaries in the arrays instead
        # of materialising one NDTResult per row.  Key order and group
        # contents are identical to the row loop below.
        return results.download_groups()
    groups: dict[tuple[str, Month], list[float]] = {}
    for r in results:
        groups.setdefault((r.country, r.month), []).append(r.download_mbps)
    return groups


def median_download_panel(results: Iterable[NDTResult]) -> CountryPanel:
    """Median download speed per (country, month)."""
    return CountryPanel.from_records(
        (cc, month, statistics.median(values))
        for (cc, month), values in _group(results).items()
    )


def mean_download_panel(results: Iterable[NDTResult]) -> CountryPanel:
    """Mean download speed per (country, month) -- the ablation variant."""
    return CountryPanel.from_records(
        (cc, month, statistics.fmean(values))
        for (cc, month), values in _group(results).items()
    )


def median_download_series(results: Iterable[NDTResult], country: str) -> MonthlySeries:
    """Median download speed of one country over months."""
    cc = country.upper()
    return MonthlySeries(
        {
            month: statistics.median(values)
            for (c, month), values in _group(results).items()
            if c == cc
        }
    )


def measurement_count_panel(results: Iterable[NDTResult]) -> CountryPanel:
    """Number of tests per (country, month) -- the coverage view."""
    return CountryPanel.from_records(
        (cc, month, float(len(values)))
        for (cc, month), values in _group(results).items()
    )


def median_download_by_asn(
    results: Iterable[NDTResult], country: str, start: Month, end: Month
) -> dict[int, float]:
    """Per-access-network median download speed over a month window.

    The network-level view behind Section 7.1's observations (CANTV's
    plans vs the fibre newcomers).  Networks with fewer than five tests
    in the window are dropped as statistically meaningless.
    """
    if isinstance(results, NDTColumns):
        by_asn = results.asn_downloads(country, start, end)
        return {
            asn: statistics.median(values)
            for asn, values in by_asn.items()
            if len(values) >= 5
        }
    cc = country.upper()
    by_asn = {}
    for r in results:
        if r.country == cc and start <= r.month <= end:
            by_asn.setdefault(r.asn, []).append(r.download_mbps)
    return {
        asn: statistics.median(values)
        for asn, values in by_asn.items()
        if len(values) >= 5
    }
