"""Synthetic LACNIC delegation file for Venezuela.

Materialises the shared address plan
(:mod:`repro.registry.address_plan`) as an extended-stats delegation file,
together with ASN records for the Venezuelan operators that appear in the
paper's analyses.
"""

from __future__ import annotations

import datetime as _dt

from repro.registry import address_plan
from repro.registry.delegation import DelegationFile, DelegationRecord

#: ASN delegations for the operators in Table 1 plus the historical networks.
_VE_ASN_DELEGATIONS: tuple[tuple[int, int], ...] = (
    # (asn, allocation year)
    (address_plan.AS_CANTV, 1997),
    (address_plan.AS_TELEFONICA, 2005),
    (address_plan.AS_NETUNO, 2001),
    (14317, 2002),
    (14318, 2003),
    (address_plan.AS_TELEMIC, 2004),
    (27717, 1996),
    (27718, 1997),
    (address_plan.AS_MOVILNET, 2006),
    (address_plan.AS_AIRTEK, 2013),
    (address_plan.AS_VIGINET, 2014),
    (address_plan.AS_FIBEX, 2014),
    (address_plan.AS_DIGITEL, 2014),
    (address_plan.AS_THUNDERNET, 2016),
)


def synthesize_ve_delegations(
    snapshot_date: _dt.date = _dt.date(2024, 1, 1),
) -> DelegationFile:
    """Build the cumulative Venezuelan delegation file.

    Because the extended-stats format dates every record, a single file
    generated "as of" the end of the study window is sufficient for every
    monthly accounting query.
    """
    records: list[DelegationRecord] = []
    for alloc in address_plan.ALL_VE_ALLOCATIONS:
        network = alloc.network
        records.append(
            DelegationRecord(
                registry="lacnic",
                cc="VE",
                rectype="ipv4",
                start=str(network.network_address),
                value=network.num_addresses,
                date=_dt.date(alloc.year, alloc.month, 1),
                status="allocated",
            )
        )
    for asn, year in _VE_ASN_DELEGATIONS:
        records.append(
            DelegationRecord(
                registry="lacnic",
                cc="VE",
                rectype="asn",
                start=str(asn),
                value=1,
                date=_dt.date(year, 1, 15),
                status="allocated",
            )
        )
    return DelegationFile(
        registry="lacnic", snapshot_date=snapshot_date, records=records
    )
