"""Parser and writer for the RIR extended delegation statistics format.

The format is line-oriented, pipe-separated, shared by all five RIRs::

    2|lacnic|20240101|3|19870101|20240101|-0500      <- version header
    lacnic|*|ipv4|*|2|summary                        <- per-type summaries
    lacnic|VE|ipv4|200.44.32.0|8192|20001208|allocated
    lacnic|VE|asn|8048|1|19970101|allocated

Record fields: ``registry|cc|type|start|value|date|status[|opaque-id]``.
For ``ipv4`` records *value* is the number of addresses; for ``asn``
records it is the number of consecutive AS numbers; for ``ipv6`` it is the
prefix length.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest import Quarantine

_VALID_TYPES = {"ipv4", "ipv6", "asn"}
_VALID_STATUSES = {"allocated", "assigned", "available", "reserved"}


class DelegationParseError(ValueError):
    """Raised when a delegation file line cannot be parsed."""


@dataclass(frozen=True, slots=True)
class DelegationRecord:
    """One delegation line.

    Attributes:
        registry: RIR name, e.g. ``"lacnic"``.
        cc: ISO country code, upper case.
        rectype: ``"ipv4"``, ``"ipv6"`` or ``"asn"``.
        start: First address / first ASN / prefix, as a string.
        value: Address count (ipv4), prefix length (ipv6) or ASN count (asn).
        date: Delegation date.
        status: ``allocated`` / ``assigned`` / ``available`` / ``reserved``.
    """

    registry: str
    cc: str
    rectype: str
    start: str
    value: int
    date: _dt.date
    status: str

    def to_line(self) -> str:
        """Serialise back to the pipe-separated wire form."""
        return "|".join(
            [
                self.registry,
                self.cc,
                self.rectype,
                self.start,
                str(self.value),
                self.date.strftime("%Y%m%d"),
                self.status,
            ]
        )


@dataclass
class DelegationFile:
    """A parsed delegation file: header metadata plus records."""

    registry: str
    snapshot_date: _dt.date
    records: list[DelegationRecord]

    def ipv4_records(self, cc: str | None = None) -> list[DelegationRecord]:
        """IPv4 allocation/assignment records, optionally for one country."""
        return self._select("ipv4", cc)

    def asn_records(self, cc: str | None = None) -> list[DelegationRecord]:
        """ASN records, optionally for one country."""
        return self._select("asn", cc)

    def _select(self, rectype: str, cc: str | None) -> list[DelegationRecord]:
        wanted_cc = cc.upper() if cc else None
        return [
            r
            for r in self.records
            if r.rectype == rectype
            and r.status in ("allocated", "assigned")
            and (wanted_cc is None or r.cc == wanted_cc)
        ]

    def to_text(self) -> str:
        """Serialise the whole file, regenerating header and summaries."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.rectype] = counts.get(record.rectype, 0) + 1
        date_str = self.snapshot_date.strftime("%Y%m%d")
        lines = [
            f"2|{self.registry}|{date_str}|{len(self.records)}|19870101|{date_str}|-0500"
        ]
        for rectype in sorted(counts):
            lines.append(f"{self.registry}|*|{rectype}|*|{counts[rectype]}|summary")
        lines.extend(r.to_line() for r in self.records)
        return "\n".join(lines) + "\n"

    def save(self, path: Path | str) -> None:
        """Write the serialised file to *path*."""
        Path(path).write_text(self.to_text(), encoding="utf-8")


def _parse_date(text: str, line_no: int) -> _dt.date:
    if len(text) != 8 or not text.isdigit():
        raise DelegationParseError(f"line {line_no}: bad date {text!r}")
    return _dt.date(int(text[:4]), int(text[4:6]), int(text[6:8]))


def parse_delegation_file(
    text: str,
    *,
    strict: bool = True,
    quarantine: "Quarantine | None" = None,
) -> DelegationFile:
    """Parse the extended-stats format.

    Summary lines and comments are skipped; the version header supplies the
    registry name and snapshot date.

    Args:
        text: The delegation file contents.
        strict: ``True`` (default) raises on the first malformed record;
            ``False`` quarantines malformed records under an error
            budget.  A missing version header is fatal either way — a
            file without one is the wrong file, not a dirty one.
        quarantine: Optional caller-owned quarantine (implies lenient
            parsing); a private one is created when ``strict=False``.

    Raises:
        DelegationParseError: on malformed headers, or (strict mode)
            malformed records.
        repro.ingest.ErrorBudgetExceeded: too many malformed records
            (lenient mode).
    """
    if quarantine is None and not strict:
        from repro.ingest import Quarantine

        quarantine = Quarantine("registry.delegation")
    registry = ""
    snapshot_date = _dt.date(1970, 1, 1)
    records: list[DelegationRecord] = []
    saw_header = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("|")
        if not saw_header and fields[0] in ("2", "2.3"):
            if len(fields) < 4:
                raise DelegationParseError(f"line {line_no}: short header")
            registry = fields[1]
            snapshot_date = _parse_date(fields[2], line_no)
            saw_header = True
            continue
        if len(fields) >= 6 and fields[5] == "summary":
            continue
        try:
            if len(fields) < 7:
                raise DelegationParseError(
                    f"line {line_no}: short record: {line!r}"
                )
            rectype = fields[2]
            if rectype not in _VALID_TYPES:
                raise DelegationParseError(f"line {line_no}: bad type {rectype!r}")
            status = fields[6]
            if status not in _VALID_STATUSES:
                raise DelegationParseError(
                    f"line {line_no}: bad status {status!r}"
                )
            try:
                value = int(fields[4])
            except ValueError:
                raise DelegationParseError(
                    f"line {line_no}: bad value {fields[4]!r}"
                ) from None
            date_field = fields[5]
            # 'available'/'reserved' records may carry an empty date.
            date = (
                _parse_date(date_field, line_no)
                if date_field
                else _dt.date(1970, 1, 1)
            )
        except DelegationParseError as exc:
            if quarantine is None:
                raise
            quarantine.admit(line_no, raw, str(exc))
            continue
        records.append(
            DelegationRecord(
                registry=fields[0],
                cc=fields[1].upper(),
                rectype=rectype,
                start=fields[3],
                value=value,
                date=date,
                status=status,
            )
        )
    if not saw_header:
        raise DelegationParseError("missing version header")
    if quarantine is not None:
        quarantine.check(len(records))
    get_registry().counter("registry.delegation.rows_parsed").inc(len(records))
    return DelegationFile(registry=registry, snapshot_date=snapshot_date, records=records)
