"""Allocated-address accounting over delegation snapshots.

The paper's Fig. 2 denominator is the total IPv4 address space allocated to
Venezuela in each monthly LACNIC delegation snapshot.  Because delegation
files are cumulative (every record carries its delegation date), one full
file per analysis is enough: the per-month total is the sum of records
dated on or before that month.
"""

from __future__ import annotations

from repro.registry.delegation import DelegationFile
from repro.timeseries.month import Month, month_range
from repro.timeseries.series import MonthlySeries


def allocated_addresses(delegations: DelegationFile, cc: str, as_of: Month) -> int:
    """IPv4 addresses allocated to *cc* on or before *as_of*."""
    cutoff = as_of.plus(1).first_day()
    return sum(
        r.value
        for r in delegations.ipv4_records(cc)
        if r.date < cutoff
    )


def allocation_series(
    delegations: DelegationFile, cc: str, start: Month, end: Month
) -> MonthlySeries:
    """Monthly cumulative allocated-address series for *cc* in [start, end]."""
    return MonthlySeries(
        {
            m: float(allocated_addresses(delegations, cc, m))
            for m in month_range(start, end)
        }
    )
