"""RIR delegation files (LACNIC extended-stats substitutes).

The paper downloads LACNIC delegation files from the first of each month
since 2008 to measure each country's *allocated* address space (Fig. 2's
denominator).  This subpackage implements:

* :mod:`repro.registry.delegation` -- parser/writer for the RIR
  extended-stats format used by all five RIRs.
* :mod:`repro.registry.address_space` -- per-country allocated-address
  accounting over monthly snapshots.
* :mod:`repro.registry.synthetic` -- a deterministic Venezuelan allocation
  history calibrated to Fig. 2.
"""

from repro.registry.address_space import allocated_addresses, allocation_series
from repro.registry.delegation import (
    DelegationFile,
    DelegationRecord,
    parse_delegation_file,
)
from repro.registry.synthetic import synthesize_ve_delegations

__all__ = [
    "DelegationFile",
    "DelegationRecord",
    "allocated_addresses",
    "allocation_series",
    "parse_delegation_file",
    "synthesize_ve_delegations",
]
