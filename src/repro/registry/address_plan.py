"""The synthetic Venezuelan IPv4 address plan.

One shared roster of Venezuelan allocations drives both sides of Fig. 2:
the registry view (LACNIC delegation files; see
:mod:`repro.registry.synthetic`) and the routing view (RouteViews
prefix2as snapshots; see :mod:`repro.bgp.synthetic`).  Keeping the roster
in one place guarantees the two stay consistent: everything announced is
also allocated.

The Telefonica block list follows the Appendix C heatmap roster; CANTV and
the remaining ISPs use plausible LACNIC-region blocks sized so the
aggregates match Fig. 2 (CANTV ~2.8M addresses by 2014, Telefonica ~1.9M,
country total ~6.4M with a 2016 plateau at IPv4 exhaustion).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

# Well-known ASNs used throughout the reproduction.
AS_CANTV = 8048
AS_TELEFONICA = 6306
AS_TELEMIC = 21826
AS_DIGITEL = 264731
AS_FIBEX = 264628
AS_AIRTEK = 61461
AS_VIGINET = 263703
AS_NETUNO = 11562
AS_THUNDERNET = 272809
AS_MOVILNET = 27889


@dataclass(frozen=True, slots=True)
class Allocation:
    """One allocated IPv4 block.

    Attributes:
        prefix: CIDR string, e.g. ``"186.88.0.0/13"``.
        asn: Autonomous system the block is operated by.
        year: Allocation year.
        month: Allocation month.
    """

    prefix: str
    asn: int
    year: int
    month: int

    @property
    def network(self) -> ipaddress.IPv4Network:
        """The block as an :class:`ipaddress.IPv4Network`."""
        return ipaddress.ip_network(self.prefix)

    @property
    def num_addresses(self) -> int:
        """Number of addresses in the block."""
        return self.network.num_addresses


def _alloc(prefix: str, asn: int, year: int, month: int = 6) -> Allocation:
    return Allocation(prefix, asn, year, month)


#: CANTV's allocations: ~2.76M addresses accumulated by 2013.
CANTV_ALLOCATIONS: tuple[Allocation, ...] = (
    _alloc("200.44.0.0/16", AS_CANTV, 1998, 3),
    _alloc("200.82.128.0/19", AS_CANTV, 2000, 7),
    _alloc("200.109.0.0/16", AS_CANTV, 2004, 2),
    _alloc("201.208.0.0/13", AS_CANTV, 2006, 5),
    _alloc("190.72.0.0/14", AS_CANTV, 2007, 4),
    _alloc("190.36.0.0/14", AS_CANTV, 2007, 6),
    _alloc("190.198.0.0/15", AS_CANTV, 2008, 9),
    _alloc("186.88.0.0/13", AS_CANTV, 2009, 6),
    _alloc("190.200.0.0/14", AS_CANTV, 2010, 8),
    _alloc("190.76.0.0/15", AS_CANTV, 2011, 3),
    _alloc("200.8.0.0/16", AS_CANTV, 2012, 2),
    _alloc("200.93.0.0/16", AS_CANTV, 2013, 1),
    _alloc("201.216.0.0/15", AS_CANTV, 2013, 7),
)

#: Telefonica de Venezuela's allocations, following the Appendix C roster.
TELEFONICA_ALLOCATIONS: tuple[Allocation, ...] = (
    _alloc("200.31.128.0/19", AS_TELEFONICA, 2005, 4),
    _alloc("161.140.0.0/16", AS_TELEFONICA, 2005, 10),
    _alloc("200.35.64.0/18", AS_TELEFONICA, 2006, 3),
    _alloc("161.212.0.0/16", AS_TELEFONICA, 2006, 9),
    _alloc("200.71.128.0/20", AS_TELEFONICA, 2007, 2),
    _alloc("161.234.0.0/16", AS_TELEFONICA, 2007, 8),
    _alloc("161.255.0.0/16", AS_TELEFONICA, 2008, 5),
    _alloc("200.124.121.0/24", AS_TELEFONICA, 2008, 11),
    _alloc("186.24.0.0/17", AS_TELEFONICA, 2009, 4),
    _alloc("186.25.0.0/16", AS_TELEFONICA, 2009, 10),
    _alloc("186.164.0.0/15", AS_TELEFONICA, 2010, 3),
    _alloc("186.166.0.0/16", AS_TELEFONICA, 2010, 9),
    _alloc("179.20.0.0/14", AS_TELEFONICA, 2011, 2),
    _alloc("186.184.0.0/15", AS_TELEFONICA, 2011, 8),
    _alloc("186.186.0.0/15", AS_TELEFONICA, 2011, 11),
    _alloc("179.44.0.0/14", AS_TELEFONICA, 2012, 6),
    _alloc("181.180.0.0/14", AS_TELEFONICA, 2012, 10),
    _alloc("181.184.0.0/14", AS_TELEFONICA, 2013, 5),
    _alloc("186.24.128.0/17", AS_TELEFONICA, 2013, 9),
)

#: Blocks held by the rest of the Venezuelan market (Table 1 players and a
#: long tail of universities, banks and regional ISPs).
OTHER_VE_ALLOCATIONS: tuple[Allocation, ...] = (
    _alloc("200.6.128.0/19", 27717, 1995, 6),       # university network
    _alloc("200.11.128.0/17", 27718, 1998, 2),      # government network
    _alloc("200.74.0.0/17", 14317, 2002, 5),        # Inter-era cable ISP
    _alloc("200.105.0.0/16", 14318, 2003, 9),
    _alloc("201.232.0.0/15", AS_NETUNO, 2006, 7),
    _alloc("190.120.0.0/16", AS_TELEMIC, 2008, 4),
    _alloc("201.248.0.0/14", AS_MOVILNET, 2009, 8),
    _alloc("190.121.0.0/16", AS_TELEMIC, 2010, 6),
    _alloc("186.148.0.0/15", AS_DIGITEL, 2011, 5),
    _alloc("190.160.0.0/14", AS_MOVILNET, 2012, 7),
    _alloc("186.150.0.0/15", AS_DIGITEL, 2013, 3),
    _alloc("181.208.0.0/14", AS_FIBEX, 2014, 4),
    _alloc("190.96.0.0/17", AS_THUNDERNET, 2014, 10),
    _alloc("179.60.0.0/15", AS_AIRTEK, 2015, 6),
    _alloc("179.62.0.0/15", AS_VIGINET, 2016, 2),
)

#: Every Venezuelan allocation, by date.
ALL_VE_ALLOCATIONS: tuple[Allocation, ...] = tuple(
    sorted(
        CANTV_ALLOCATIONS + TELEFONICA_ALLOCATIONS + OTHER_VE_ALLOCATIONS,
        key=lambda a: (a.year, a.month, a.prefix),
    )
)


def allocations_for_asn(asn: int) -> list[Allocation]:
    """All Venezuelan allocations operated by *asn*."""
    return [a for a in ALL_VE_ALLOCATIONS if a.asn == asn]


def total_addresses(allocations: tuple[Allocation, ...] | list[Allocation]) -> int:
    """Sum of addresses across the given allocations."""
    return sum(a.num_addresses for a in allocations)
