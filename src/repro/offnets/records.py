"""Off-net artifact records.

One record states that a hypergiant had at least one off-net server
inside an AS during a calendar year, the granularity of the published
artifacts the paper consumes.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: The ten hypergiants covered by Fig. 18 (first four are Fig. 7).
HYPERGIANTS: tuple[str, ...] = (
    "google",
    "akamai",
    "facebook",
    "netflix",
    "microsoft",
    "limelight",
    "cdnetworks",
    "alibaba",
    "amazon",
    "cloudflare",
)


@dataclass(frozen=True, slots=True)
class OffnetRecord:
    """One (year, hypergiant, hosting AS) observation."""

    year: int
    hypergiant: str
    asn: int

    def __post_init__(self) -> None:
        if self.hypergiant not in HYPERGIANTS:
            raise ValueError(f"unknown hypergiant: {self.hypergiant!r}")


class OffnetArchive:
    """A queryable collection of off-net records."""

    def __init__(self, records: Iterable[OffnetRecord] = ()):
        self._records: set[OffnetRecord] = set(records)

    def add(self, record: OffnetRecord) -> None:
        """Insert one record (duplicates are idempotent)."""
        self._records.add(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[OffnetRecord]:
        return iter(
            sorted(self._records, key=lambda r: (r.year, r.hypergiant, r.asn))
        )

    def hosting_asns(self, hypergiant: str, year: int) -> set[int]:
        """ASes hosting *hypergiant* off-nets during *year*."""
        return {
            r.asn
            for r in self._records
            if r.hypergiant == hypergiant and r.year == year
        }

    def years(self) -> list[int]:
        """All observed years, ascending."""
        return sorted({r.year for r in self._records})

    def hypergiants_seen(self) -> list[str]:
        """Hypergiants with at least one record, in canonical order."""
        seen = {r.hypergiant for r in self._records}
        return [hg for hg in HYPERGIANTS if hg in seen]

    # -- CSV round-trip --------------------------------------------------------

    def to_csv(self) -> str:
        """Serialise as ``year,hypergiant,asn`` rows."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["year", "hypergiant", "asn"])
        for record in self:
            writer.writerow([record.year, record.hypergiant, record.asn])
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "OffnetArchive":
        """Parse the layout produced by :meth:`to_csv`."""
        archive = cls()
        for row in csv.DictReader(io.StringIO(text)):
            archive.add(
                OffnetRecord(int(row["year"]), row["hypergiant"], int(row["asn"]))
            )
        return archive

    def save(self, path: Path | str) -> None:
        """Write the CSV form to *path*."""
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def load(cls, path: Path | str) -> "OffnetArchive":
        """Read the CSV form from *path*."""
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))
