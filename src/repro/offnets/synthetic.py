"""Synthetic off-net deployment schedules calibrated to the paper.

The Venezuelan schedules encode the paper's narrative directly: Google
and Akamai established (including inside CANTV) before the 2013 downturn;
Facebook never deploys in CANTV; Netflix enters CANTV only in 2021.  The
remaining countries are split, per hypergiant, into an "established early"
tier (top incumbents host from the start of the window) and a "late and
thin" tier, sized so Venezuela's average-coverage rank lands on the
paper's values: Google 19/27, Akamai 18/22, Facebook 21/25 and
Netflix 23/25.  The other six hypergiants have minimal Latin American
footprints and never appear in Venezuela.
"""

from __future__ import annotations

from repro.apnic.model import APNICEstimates
from repro.apnic.synthetic import synthesize_populations
from repro.offnets.as2org import OrgMap
from repro.offnets.records import OffnetArchive, OffnetRecord

#: The artifact window of Gigis et al.
WINDOW_YEARS: tuple[int, ...] = tuple(range(2013, 2022))

#: Venezuelan schedules: hypergiant -> ((asn, first year), ...).
VE_SCHEDULES: dict[str, tuple[tuple[int, int], ...]] = {
    "google": (
        (8048, 2013), (21826, 2013), (6306, 2014), (61461, 2015),
        (11562, 2016), (264731, 2018), (263703, 2019),
    ),
    "akamai": ((8048, 2013), (6306, 2013)),
    "facebook": ((21826, 2013), (6306, 2014), (11562, 2015), (264628, 2018)),
    "netflix": ((21826, 2019), (8048, 2021)),
}

#: Early-tier countries per hypergiant (top incumbents host from the
#: given year); sized so the stated number of countries outrank Venezuela.
_EARLY_TIER: dict[str, tuple[int, int, tuple[str, ...]]] = {
    # hypergiant -> (start year, top-N incumbents, countries)
    "google": (2013, 4, ("AR", "BR", "CL", "CO", "MX", "UY", "PE", "EC", "PA",
                         "CR", "DO", "GT", "PY", "BO", "CW", "TT", "AW", "SV")),
    "akamai": (2013, 3, ("AR", "BR", "CL", "CO", "MX", "UY", "PE", "EC", "PA",
                         "CR", "DO", "GT", "TT", "CW", "PY", "SV", "BO")),
    "facebook": (2014, 3, ("AR", "BR", "CL", "CO", "MX", "UY", "PE", "EC", "PA",
                           "CR", "DO", "GT", "PY", "BO", "TT", "CW", "SV", "HN",
                           "GF", "AW")),
    "netflix": (2015, 3, ("AR", "BR", "CL", "CO", "MX", "UY", "PE", "EC", "PA",
                          "CR", "DO", "GT", "PY", "BO", "TT", "CW", "SV", "HN",
                          "NI", "GF", "AW", "GY")),
}

#: Late-tier countries per hypergiant: thin deployments that stay below
#: Venezuela's average coverage.
_LATE_TIER: dict[str, tuple[int, int, tuple[str, ...]]] = {
    "google": (2019, 1, ("HN", "NI", "CU", "HT", "GY", "SR", "BZ", "GF")),
    "akamai": (2020, 1, ("HN", "NI", "HT", "CU")),
    "facebook": (2020, 1, ("CU", "HT", "GY", "SR")),
}

#: Netflix's late tier is hand-picked (single small ASes) so both
#: countries stay under Venezuela's ~6% average.
_NETFLIX_LATE: tuple[tuple[str, int], ...] = (("HT", 27759),)

#: The six hypergiants with minimal regional presence and none in VE.
_MINOR_HYPERGIANTS: dict[str, tuple[int, tuple[str, ...]]] = {
    "microsoft": (2018, ("BR", "MX")),
    "limelight": (2016, ("BR",)),
    "cdnetworks": (2017, ("MX",)),
    "alibaba": (2020, ("BR",)),
    "amazon": (2019, ("BR", "MX", "AR")),
    "cloudflare": (2018, ("BR", "MX", "AR", "CL")),
}


def synthesize_org_map() -> OrgMap:
    """The as2org+ substitute: sibling groups relevant to the analyses.

    The Venezuelan state group (CANTV + Movilnet) is the one that matters
    for the org-vs-AS ablation: Google deploys in AS8048 only, yet the
    paper's org-level method also credits Movilnet's users.
    """
    return OrgMap(
        sibling_groups=[
            (8048, 27889),                          # Venezuelan state operators
            (6306, 22927, 7418, 27951, 19422, 6147)  # Telefonica subsidiaries
        ]
    )


def _tail_asn_of(estimates: APNICEstimates, cc: str) -> int:
    """The smallest network of a country (its long-tail AS)."""
    entries = estimates.country_entries(cc)
    return entries[-1].asn


def synthesize_offnets(estimates: APNICEstimates | None = None) -> OffnetArchive:
    """Build the calibrated off-net archive over 2013-2021."""
    if estimates is None:
        estimates = synthesize_populations()
    archive = OffnetArchive()

    def deploy(hg: str, asn: int, first_year: int) -> None:
        for year in WINDOW_YEARS:
            if year >= first_year:
                archive.add(OffnetRecord(year, hg, asn))

    for hg, schedule in VE_SCHEDULES.items():
        for asn, first_year in schedule:
            deploy(hg, asn, first_year)

    for hg, (start, top_n, countries) in _EARLY_TIER.items():
        for cc in countries:
            for entry in estimates.top_networks(cc, top_n):
                deploy(hg, entry.asn, start)

    for hg, (start, top_n, countries) in _LATE_TIER.items():
        for cc in countries:
            for entry in estimates.top_networks(cc, top_n):
                deploy(hg, entry.asn, start)

    for cc, asn in _NETFLIX_LATE:
        deploy("netflix", asn, 2021)
    deploy("netflix", _tail_asn_of(estimates, "CU"), 2021)

    for hg, (start, countries) in _MINOR_HYPERGIANTS.items():
        for cc in countries:
            top = estimates.top_networks(cc, 1)
            deploy(hg, top[0].asn, start)

    return archive
