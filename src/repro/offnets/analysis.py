"""Population-weighted off-net coverage.

Coverage of a hypergiant in a country-year is the share of the country's
Internet users behind organisations with at least one off-net AS there.
Organisation expansion happens within the country's own AS population, so
a deployment in one country never credits a multinational's subsidiaries
elsewhere.
"""

from __future__ import annotations

from repro.apnic.model import APNICEstimates
from repro.offnets.as2org import OrgMap
from repro.offnets.records import OffnetArchive
from repro.timeseries.month import Month
from repro.timeseries.panel import CountryPanel


def coverage_pct(
    archive: OffnetArchive,
    estimates: APNICEstimates,
    orgmap: OrgMap | None,
    hypergiant: str,
    country: str,
    year: int,
) -> float:
    """Percent of *country*'s users covered by *hypergiant* in *year*.

    With ``orgmap=None`` the computation stays at the AS level (the
    ablation baseline); otherwise sibling ASes of hosting organisations
    are counted as covered too (the paper's method).
    """
    cc = country.upper()
    hosting = archive.hosting_asns(hypergiant, year)
    country_asns = {e.asn for e in estimates.country_entries(cc)}
    hosting_here = hosting & country_asns
    if orgmap is not None:
        covered = orgmap.expand(hosting_here) & country_asns
    else:
        covered = hosting_here
    return estimates.share_of_group(covered, cc) * 100.0


def coverage_panel(
    archive: OffnetArchive,
    estimates: APNICEstimates,
    orgmap: OrgMap | None,
    hypergiant: str,
    countries: list[str] | None = None,
) -> CountryPanel:
    """Fig. 7/18 series: yearly coverage per country (annual-keyed)."""
    if countries is None:
        countries = estimates.countries()
    records = []
    for cc in countries:
        for year in archive.years():
            records.append(
                (
                    cc,
                    Month(year, 1),
                    coverage_pct(archive, estimates, orgmap, hypergiant, cc, year),
                )
            )
    return CountryPanel.from_records(records)


def average_coverage(
    archive: OffnetArchive,
    estimates: APNICEstimates,
    orgmap: OrgMap | None,
    hypergiant: str,
) -> dict[str, float]:
    """Mean coverage over the whole observation window, per country.

    Countries never covered by the hypergiant are omitted, matching the
    paper's per-provider rank denominators (19/27, 18/22, ...).
    """
    years = archive.years()
    averages: dict[str, float] = {}
    for cc in estimates.countries():
        values = [
            coverage_pct(archive, estimates, orgmap, hypergiant, cc, year)
            for year in years
        ]
        mean = sum(values) / len(values) if values else 0.0
        if any(v > 0 for v in values):
            averages[cc] = mean
    return averages


def country_rank(
    archive: OffnetArchive,
    estimates: APNICEstimates,
    orgmap: OrgMap | None,
    hypergiant: str,
    country: str,
) -> tuple[int, int, float]:
    """(rank, population size, average) of *country* for one hypergiant.

    Rank 1 is the best-covered country.  A country with no coverage at
    all ranks last among the countries with presence plus itself.
    """
    cc = country.upper()
    averages = average_coverage(archive, estimates, orgmap, hypergiant)
    own = averages.get(cc, 0.0)
    pool = dict(averages)
    pool.setdefault(cc, own)
    rank = 1 + sum(1 for other, v in pool.items() if other != cc and v > own)
    return rank, len(pool), own
