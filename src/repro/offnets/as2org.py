"""AS-to-organisation mapping (as2org+ substitute).

The paper aggregates sibling ASes of one organisation before population
weighting so that an off-net moving between siblings does not register as
churn.  The map defaults to the identity (each AS its own org) with
explicit sibling groups layered on top.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable


class OrgMap:
    """ASN -> organisation identifier."""

    def __init__(self, sibling_groups: Iterable[Iterable[int]] = ()):
        self._org_of: dict[int, str] = {}
        for group in sibling_groups:
            members = sorted(set(group))
            if not members:
                continue
            org_id = f"org-{members[0]}"
            for asn in members:
                if asn in self._org_of and self._org_of[asn] != org_id:
                    raise ValueError(f"AS{asn} assigned to two organisations")
                self._org_of[asn] = org_id

    def org_of(self, asn: int) -> str:
        """Organisation of *asn*; singleton ASes map to themselves."""
        return self._org_of.get(asn, f"org-{asn}")

    def siblings_of(self, asn: int) -> set[int]:
        """All ASes in *asn*'s organisation (at least ``{asn}``)."""
        org = self.org_of(asn)
        group = {a for a, o in self._org_of.items() if o == org}
        group.add(asn)
        return group

    def expand(self, asns: Iterable[int]) -> set[int]:
        """Union of the sibling sets of all given ASes."""
        out: set[int] = set()
        for asn in asns:
            out.update(self.siblings_of(asn))
        return out

    def __len__(self) -> int:
        return len(self._org_of)

    def sibling_groups(self) -> list[list[int]]:
        """The explicit sibling groups, each sorted, ordered by first ASN."""
        groups: dict[str, list[int]] = {}
        for asn, org in self._org_of.items():
            groups.setdefault(org, []).append(asn)
        return sorted((sorted(g) for g in groups.values()), key=lambda g: g[0])

    def to_json(self) -> str:
        """Serialise the sibling groups (singletons are implicit)."""
        return json.dumps({"groups": self.sibling_groups()}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "OrgMap":
        """Parse the layout produced by :meth:`to_json`."""
        return cls(sibling_groups=json.loads(text)["groups"])

    def save(self, path: Path | str) -> None:
        """Write the JSON form to *path*."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Path | str) -> "OrgMap":
        """Read the JSON form from *path*."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
