"""Hypergiant off-net deployments (Gigis et al. artifact substitute).

The paper reuses the artifacts of "Seven years in the life of Hypergiants'
off-nets" (SIGCOMM'21) -- yearly lists of (hypergiant, hosting AS) pairs
derived from TLS certificate scans -- and combines them with as2org+
organisation grouping and APNIC populations to chart the share of each
country's users behind networks hosting off-nets (Fig. 7 for
Google/Akamai/Facebook/Netflix, Fig. 18 for all ten hypergiants).

* :mod:`repro.offnets.records` -- the artifact record model + CSV.
* :mod:`repro.offnets.as2org` -- the organisation map (as2org+ substitute).
* :mod:`repro.offnets.analysis` -- population-weighted coverage, both
  org-level (the paper's method) and AS-level (the ablation baseline).
* :mod:`repro.offnets.synthetic` -- deployment schedules calibrated to the
  paper's Venezuelan narrative and rankings.
"""

from repro.offnets.analysis import (
    average_coverage,
    coverage_panel,
    coverage_pct,
    country_rank,
)
from repro.offnets.as2org import OrgMap
from repro.offnets.records import HYPERGIANTS, OffnetRecord, OffnetArchive
from repro.offnets.synthetic import synthesize_offnets, synthesize_org_map

__all__ = [
    "HYPERGIANTS",
    "OffnetArchive",
    "OffnetRecord",
    "OrgMap",
    "average_coverage",
    "coverage_panel",
    "coverage_pct",
    "country_rank",
    "synthesize_offnets",
    "synthesize_org_map",
]
