"""Macroeconomic indicators (IMF / OECD substitutes).

The paper's Section 2 frames the crisis with four indicators sourced from
the IMF and OECD: crude oil production, GDP per capita, inflation and
population (Fig. 1), plus a region-wide GDP-per-capita rank analysis
(Fig. 13 / Appendix B).  This subpackage provides:

* :mod:`repro.macro.store` -- a CSV-backed indicator store in the shape of
  an IMF DataMapper export (indicator, country, year, value).
* :mod:`repro.macro.synthetic` -- deterministic crisis trajectories
  calibrated to the paper's annotations (oil -81.49%, GDP pc -70.90%,
  inflation peak 32,000%, population -13.85%, and Venezuela's GDP rank path
  3, 2, 8, 9, 7, 6, 6, 18, 23 at five-year marks).

Annual data is keyed at January of each year throughout
(``Month(year, 1)``), which lets the generic monthly machinery in
:mod:`repro.timeseries` handle annual indicators unchanged.
"""

from repro.macro.store import Indicator, IndicatorStore, annual
from repro.macro.synthetic import MacroCalibration, synthesize_macro

__all__ = [
    "Indicator",
    "IndicatorStore",
    "MacroCalibration",
    "annual",
    "synthesize_macro",
]
