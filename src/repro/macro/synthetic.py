"""Deterministic synthetic macro trajectories calibrated to the paper.

The generator reproduces, by construction, the headline annotations of
Fig. 1 and the rank path of Fig. 13:

* oil production: -81.49% from the historical maximum, -77% from 2013;
* GDP per capita: -70.90% from peak (peak 2012, trough at the end);
* inflation: peaking at 32,000%;
* population: -13.85% from peak;
* Venezuela's regional GDP-per-capita rank at five-year marks:
  3 (1980), 2 (1985), 8, 9, 7, 6, 6, 18, 23 (2020).

Construction of the rank path
-----------------------------
Venezuela's *absolute* GDP curve is specified directly (so Fig. 1b is exact).
A regional "base" curve is then derived as ``base(t) = VE(t) / u(t)`` where
``u(t)`` is Venezuela's strength relative to the region, anchored at the
five-year marks.  Every other economy ``i`` is assigned a fixed strength
factor ``f_i`` and follows ``f_i * base(t)`` (plus a sub-percent wiggle).
Venezuela's rank at an anchor year is therefore ``1 + #{i : f_i > u(t)}``,
and the ``u`` anchors are placed in the gaps between consecutive ``f_i``
so the required count holds exactly.  The wiggle amplitude (0.8%) is kept
below half the narrowest ``u``-to-``f`` margin so it can never flip a rank
at an anchor year.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.macro.store import Indicator, IndicatorStore


@dataclass(frozen=True)
class MacroCalibration:
    """Headline targets the synthetic macro world is built to reproduce."""

    oil_decline_from_peak_pct: float = 81.49
    oil_decline_since_2013_pct: float = 77.0
    gdp_decline_from_peak_pct: float = 70.90
    inflation_peak_pct: float = 32_000.0
    population_decline_from_peak_pct: float = 13.85
    #: Venezuela's GDP-per-capita rank at 1980, 1985, ..., 2020.
    gdp_rank_path: tuple[int, ...] = (3, 2, 8, 9, 7, 6, 6, 18, 23)


#: Fixed relative-strength factors for the 27 non-Venezuelan economies.
#: Ordered groups correspond to the gaps the ``u`` anchors must fall into.
_GDP_FACTORS: dict[str, float] = {
    "TT": 2.30,
    "AR": 1.90,
    "UY": 1.65, "CL": 1.50, "MX": 1.35,
    "BR": 1.15,
    "PA": 1.05,
    "CR": 0.975,
    "CO": 0.88, "DO": 0.84, "PE": 0.80, "EC": 0.74, "PY": 0.68,
    "SR": 0.64, "BZ": 0.60, "SV": 0.56, "GT": 0.52,
    "BO": 0.42, "HN": 0.39, "NI": 0.36, "GY": 0.33, "CU": 0.31,
    "JM": 0.25, "DM": 0.23, "BS": 0.21, "BB": 0.19, "HT": 0.16,
}

#: Venezuela-over-base strength at the five-year anchors (and 2024).
#: Each value sits strictly inside a gap between consecutive factors above,
#: chosen so that "1 + number of factors above u" equals the paper's rank.
_U_ANCHORS: list[tuple[int, float]] = [
    (1980, 1.80),   # rank 3  (TT, AR above)
    (1985, 2.05),   # rank 2  (TT above)
    (1990, 1.01),   # rank 8
    (1995, 0.93),   # rank 9
    (2000, 1.10),   # rank 7
    (2005, 1.25),   # rank 6
    (2010, 1.22),   # rank 6
    (2015, 0.47),   # rank 18
    (2020, 0.28),   # rank 23
    (2024, 0.27),   # rank 23
]

#: Venezuela's absolute GDP per capita (current USD), hand-anchored.  The
#: 2012 value is the peak; the 2024 value is set below to make the decline
#: from peak exactly 70.90%.
_VE_GDP_PEAK = 12_237.0
_VE_GDP_ANCHORS: list[tuple[int, float]] = [
    (1980, 9_500.0),
    (1985, 9_200.0),
    (1988, 7_500.0),
    (1990, 5_200.0),
    (1995, 4_800.0),
    (2000, 6_200.0),
    (2005, 7_800.0),
    (2010, 11_000.0),
    (2012, _VE_GDP_PEAK),
    (2013, 12_100.0),
    (2015, 7_000.0),
    (2017, 5_200.0),
    (2018, 4_300.0),
    (2019, 3_900.0),
    (2020, 3_800.0),
    (2022, 3_650.0),
    (2024, _VE_GDP_PEAK * (1 - 70.90 / 100.0)),
]

#: Oil production (thousand barrels-equivalent, the paper's axis units).
#: Max is 1973; the 2013 value makes the post-2013 drop exactly 77%, and the
#: final value makes the from-max decline exactly 81.49%.
_OIL_MAX = 200_000.0
_OIL_FINAL = _OIL_MAX * (1 - 81.49 / 100.0)
_OIL_2013 = _OIL_FINAL / (1 - 77.0 / 100.0)
_OIL_ANCHORS: list[tuple[int, float]] = [
    (1965, 150_000.0),
    (1970, 185_000.0),
    (1973, _OIL_MAX),
    (1980, 125_000.0),
    (1985, 105_000.0),
    (1990, 125_000.0),
    (1995, 150_000.0),
    (2000, 155_000.0),
    (2005, 158_000.0),
    (2010, 159_000.0),
    (2013, _OIL_2013),
    (2015, 140_000.0),
    (2016, 120_000.0),
    (2017, 100_000.0),
    (2018, 75_000.0),
    (2019, 50_000.0),
    (2020, 38_000.0),
    (2023, _OIL_FINAL),
]

#: Annual inflation rate, percent.  Peak is 32,000% in 2019.
_INFLATION_ANCHORS: list[tuple[int, float]] = [
    (1980, 20.0),
    (1985, 10.0),
    (1990, 35.0),
    (1995, 60.0),
    (2000, 16.0),
    (2005, 16.0),
    (2010, 28.0),
    (2013, 40.0),
    (2014, 62.0),
    (2015, 120.0),
    (2016, 255.0),
    (2017, 438.0),
    (2018, 9_000.0),
    (2019, 32_000.0),
    (2020, 2_355.0),
    (2021, 686.0),
    (2022, 234.0),
    (2023, 190.0),
]

#: Population in millions.  Peak 2015; final value makes the decline from
#: peak exactly 13.85%.
_POP_PEAK = 30.08
_POP_ANCHORS: list[tuple[int, float]] = [
    (1980, 15.0),
    (1990, 19.8),
    (2000, 24.5),
    (2010, 28.4),
    (2013, 30.0),
    (2015, _POP_PEAK),
    (2016, 29.8),
    (2017, 29.0),
    (2018, 27.6),
    (2019, 26.5),
    (2020, 26.1),
    (2022, 26.0),
    (2023, _POP_PEAK * (1 - 13.85 / 100.0)),
]


def _interp_yearly(anchors: list[tuple[int, float]]) -> dict[int, float]:
    """Linear interpolation of (year, value) anchors at yearly resolution."""
    if len(anchors) < 2:
        raise ValueError("need at least two anchors")
    years = [y for y, _ in anchors]
    if years != sorted(set(years)):
        raise ValueError("anchor years must be strictly increasing")
    out: dict[int, float] = {}
    for (y0, v0), (y1, v1) in zip(anchors, anchors[1:]):
        for year in range(y0, y1):
            frac = (year - y0) / (y1 - y0)
            out[year] = v0 + frac * (v1 - v0)
    out[anchors[-1][0]] = anchors[-1][1]
    return out


def _wiggle(country: str, year: int) -> float:
    """Deterministic sub-percent multiplicative wiggle per country-year.

    Amplitude 0.8%, below half the narrowest margin between the ``u``
    anchors and the neighbouring strength factors, so anchor-year ranks are
    never affected.
    """
    phase = (sum(ord(ch) for ch in country) % 17) / 17.0
    rate = 0.13 + (hash_stable(country) % 7) / 100.0
    return 1.0 + 0.008 * math.sin(2 * math.pi * (year * rate + phase))


def hash_stable(text: str) -> int:
    """A small stable string hash (Python's builtin hash is salted)."""
    acc = 0
    for ch in text:
        acc = (acc * 131 + ord(ch)) % 1_000_003
    return acc


def synthesize_macro() -> IndicatorStore:
    """Build the full synthetic macro indicator store.

    Returns a store with Venezuela-only series for oil production,
    inflation and population, and a 28-economy GDP-per-capita panel whose
    Venezuelan rank trajectory matches the paper's Fig. 13 annotations.
    """
    store = IndicatorStore()

    for year, value in _interp_yearly(_OIL_ANCHORS).items():
        store.add(Indicator.OIL_PRODUCTION, "VE", year, value)
    for year, value in _interp_yearly(_INFLATION_ANCHORS).items():
        store.add(Indicator.INFLATION, "VE", year, value)
    for year, value in _interp_yearly(_POP_ANCHORS).items():
        store.add(Indicator.POPULATION, "VE", year, value)

    ve_gdp = _interp_yearly(_VE_GDP_ANCHORS)
    strength = _interp_yearly(_U_ANCHORS)
    for year, value in ve_gdp.items():
        store.add(Indicator.GDP_PER_CAPITA, "VE", year, value)
    for year in ve_gdp:
        base = ve_gdp[year] / strength[year]
        for code, factor in _GDP_FACTORS.items():
            store.add(
                Indicator.GDP_PER_CAPITA,
                code,
                year,
                factor * base * _wiggle(code, year),
            )
    return store
