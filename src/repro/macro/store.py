"""CSV-backed store of annual macroeconomic indicators.

The on-disk format mirrors a flattened IMF DataMapper / OECD export::

    indicator,country,year,value
    gdp_per_capita,VE,2013,12237.5

Annual values are keyed at January (``Month(year, 1)``) so that the monthly
time-series machinery applies directly.
"""

from __future__ import annotations

import csv
import enum
import io
from pathlib import Path
from typing import Iterable

from repro.timeseries.month import Month
from repro.timeseries.panel import CountryPanel
from repro.timeseries.series import MonthlySeries


class Indicator(str, enum.Enum):
    """The macro indicators used by the paper's Section 2 / Appendix B."""

    OIL_PRODUCTION = "oil_production"
    GDP_PER_CAPITA = "gdp_per_capita"
    INFLATION = "inflation"
    POPULATION = "population"


def annual(year: int) -> Month:
    """The canonical Month key for an annual observation."""
    return Month(year, 1)


class IndicatorStore:
    """In-memory collection of (indicator, country, year) -> value."""

    def __init__(self) -> None:
        self._data: dict[tuple[Indicator, str, int], float] = {}

    # -- mutation -----------------------------------------------------------

    def add(self, indicator: Indicator, country: str, year: int, value: float) -> None:
        """Insert or overwrite one observation."""
        self._data[(indicator, country.upper(), year)] = float(value)

    def add_series(
        self, indicator: Indicator, country: str, values: Iterable[tuple[int, float]]
    ) -> None:
        """Insert (year, value) pairs for one country."""
        for year, value in values:
            self.add(indicator, country, year, value)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def value(self, indicator: Indicator, country: str, year: int) -> float:
        """One observation; raises KeyError when absent."""
        return self._data[(indicator, country.upper(), year)]

    def series(self, indicator: Indicator, country: str) -> MonthlySeries:
        """All years of one indicator for one country, annual-keyed."""
        cc = country.upper()
        return MonthlySeries(
            {
                annual(year): value
                for (ind, c, year), value in self._data.items()
                if ind is indicator and c == cc
            }
        )

    def panel(self, indicator: Indicator) -> CountryPanel:
        """All countries for one indicator as a CountryPanel."""
        acc: dict[str, dict[Month, float]] = {}
        for (ind, country, year), value in self._data.items():
            if ind is indicator:
                acc.setdefault(country, {})[annual(year)] = value
        return CountryPanel({c: MonthlySeries(v) for c, v in acc.items()})

    def countries(self, indicator: Indicator) -> list[str]:
        """Countries with at least one observation of *indicator*."""
        return sorted({c for (ind, c, _y) in self._data if ind is indicator})

    # -- CSV round-trip --------------------------------------------------------

    def to_csv(self) -> str:
        """Serialise to the DataMapper-style CSV format."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["indicator", "country", "year", "value"])
        for (indicator, country, year) in sorted(
            self._data, key=lambda k: (k[0].value, k[1], k[2])
        ):
            value = self._data[(indicator, country, year)]
            writer.writerow([indicator.value, country, year, repr(value)])
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "IndicatorStore":
        """Parse the CSV format produced by :meth:`to_csv`."""
        store = cls()
        reader = csv.DictReader(io.StringIO(text))
        for row in reader:
            store.add(
                Indicator(row["indicator"]),
                row["country"],
                int(row["year"]),
                float(row["value"]),
            )
        return store

    def save(self, path: Path | str) -> None:
        """Write the CSV format to *path*."""
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def load(cls, path: Path | str) -> "IndicatorStore":
        """Read the CSV format from *path*."""
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))
