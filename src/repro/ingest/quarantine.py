"""Lenient ingestion: per-record quarantine under an error budget.

Real archives are dirty — truncated snapshots, malformed rows, encoding
damage — and an all-or-nothing parser turns one bad row in a ten-year
corpus into a failed pipeline.  Every ``repro`` parser therefore accepts
``strict=False``: malformed records are *quarantined* (recorded, counted,
skipped) instead of aborting the parse, and an :class:`ErrorBudget` caps
how much damage may be absorbed silently — past the budget the parse
fails loudly with :class:`ErrorBudgetExceeded`, because a file that is
mostly garbage is a wrong file, not a dirty one.

Observability (see ``docs/RELIABILITY.md`` / ``docs/OBSERVABILITY.md``):

* ``ingest.quarantined.<component>`` — records quarantined per parser.
* ``ingest.budget_exceeded`` — parses aborted for blowing the budget.

Strict mode (the default everywhere) is byte-for-byte the historical
behaviour: first malformed record raises the parser's own error type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, TypeVar

from repro.obs import get_registry

T = TypeVar("T")

#: How much of a quarantined record's raw text is retained for post-mortem.
_RAW_PREVIEW = 160


class ErrorBudgetExceeded(ValueError):
    """Too many records were quarantined for the parse to be trusted."""

    def __init__(self, component: str, bad: int, total: int, max_ratio: float):
        self.component = component
        self.bad = bad
        self.total = total
        self.max_ratio = max_ratio
        super().__init__(
            f"{component}: {bad}/{total} records quarantined, over the "
            f"{max_ratio:.1%} error budget"
        )


@dataclass(frozen=True, slots=True)
class ErrorBudget:
    """How many bad records a lenient parse may absorb.

    Attributes:
        max_ratio: Highest tolerable ``bad / (bad + good)`` fraction.
        grace: Bad records always tolerated regardless of ratio, so a
            two-line file with one bad line is not instantly fatal.
    """

    max_ratio: float = 0.05
    grace: int = 2

    def exceeded(self, bad: int, total: int) -> bool:
        """Whether *bad* out of *total* records blows the budget."""
        if bad <= self.grace:
            return False
        return total > 0 and bad / total > self.max_ratio


#: The budget lenient parses use unless the caller supplies one.
DEFAULT_BUDGET = ErrorBudget()


@dataclass(frozen=True, slots=True)
class QuarantinedRecord:
    """One record a lenient parse refused: where, why, and a preview."""

    line_no: int
    reason: str
    raw: str

    def render(self) -> str:
        return f"line {self.line_no}: {self.reason}: {self.raw!r}"


class Quarantine:
    """Collector for records a lenient parse skips.

    One instance covers one parse.  Callers that want the quarantined
    records (the chaos drill, post-mortem tooling) construct and pass
    their own; parsers construct a private one otherwise, so metrics are
    recorded either way.
    """

    def __init__(self, component: str, budget: ErrorBudget | None = None):
        self.component = component
        self.budget = budget if budget is not None else DEFAULT_BUDGET
        self.records: list[QuarantinedRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def admit(self, line_no: int, raw: object, reason: str) -> None:
        """Quarantine one record (and count it in the registry)."""
        self.records.append(
            QuarantinedRecord(line_no, reason, str(raw)[:_RAW_PREVIEW])
        )
        get_registry().counter(f"ingest.quarantined.{self.component}").inc()

    def check(self, accepted: int) -> None:
        """Enforce the error budget after a parse.

        Raises:
            ErrorBudgetExceeded: quarantined records exceed the budget's
                tolerated fraction of the total record count.
        """
        bad = len(self.records)
        total = accepted + bad
        if self.budget.exceeded(bad, total):
            get_registry().counter("ingest.budget_exceeded").inc()
            raise ErrorBudgetExceeded(
                self.component, bad, total, self.budget.max_ratio
            )


def quarantining_parse(
    parse: Callable[[str], T],
    items: Iterable[str],
    quarantine: Quarantine,
) -> Iterator[T]:
    """Run a single-record parser over *items*, quarantining failures.

    Adapts record-level parsers (``NDTResult.from_json``,
    ``TracerouteResult.from_json``, ``parse_chaos_string`` partials, ...)
    to lenient batch ingestion without each growing its own loop.  The
    caller runs :meth:`Quarantine.check` after consuming the iterator.
    """
    for line_no, raw in enumerate(items, start=1):
        try:
            yield parse(raw)
        except ValueError as exc:
            quarantine.admit(line_no, raw, str(exc) or type(exc).__name__)
