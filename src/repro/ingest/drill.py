"""The ``repro chaos --drill ingest-crash`` harness.

The drill proves the durability contract end to end, with *real*
crashes (``SIGKILL`` via :func:`repro.ingest.service.maybe_crash`, no
``finally`` blocks, no flushing) at every injection point:

1. An **uninterrupted control run** journals a synthetic month and
   applies it, recording the dataset/artifact fingerprints and the
   ``/v1/report`` body hash.
2. For each crash point (``post-ack``, ``mid-rebuild``, ``mid-swap``)
   a fresh journal takes the same batch with ``REPRO_INGEST_CRASH``
   set; the process must die by SIGKILL mid-pipeline.
3. A **recovery run** over the torn journal (no batch, no injection)
   must replay and apply to *exactly* the control fingerprints.
4. A **duplicate resubmission** of the original batch must re-ack as a
   duplicate without growing the journal or changing any fingerprint —
   acked work is applied exactly once.

Every run is a real subprocess of ``python -m repro ingest`` sharing
one dataset cache (so base partitions hit, only dirty shards rebuild),
mirroring production recovery: a supervisor restarting a crashed
ingester over the same journal directory.

The report renders as text and serialises as a ``repro.chaos/1``
artifact with ``"drill": "ingest-crash"``.
"""

from __future__ import annotations

import datetime as dt
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.ingest.service import CRASH_POINTS, ENV_CRASH
from repro.obs import get_logger

_LOG = get_logger("repro.ingest.drill")

#: Scenario size the drill runs at (small: the contract is the same at
#: any size, the wall-clock is not).
DRILL_PARAMS = {"ndt_tests_per_month": 2, "gpdns_samples_per_month": 1}

#: The month x country partition the drill appends (one month past the
#: synthetic window's end, so the append is unambiguous new data).
DRILL_MONTH = "2024-02"
DRILL_COUNTRY = "VE"


def _payload_lines(rows: int = 4) -> list[str]:
    from repro.mlab.ndt import NDTResult

    year, month = int(DRILL_MONTH[:4]), int(DRILL_MONTH[5:7])
    return [
        NDTResult(
            date=dt.date(year, month, 3 + i),
            country=DRILL_COUNTRY,
            asn=8048,
            download_mbps=2.5 + i,
            upload_mbps=0.9,
            min_rtt_ms=52.0,
            loss_rate=0.015,
        ).to_json()
        for i in range(rows)
    ]


def _ingest_cmd(
    cache_dir: Path, wal_dir: Path, receipt: Path, payload: Path | None
) -> list[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "--cache-dir",
        str(cache_dir),
        "ingest",
        "ndt",
    ]
    if payload is not None:
        cmd.append(str(payload))
    cmd += [
        "--wal-dir",
        str(wal_dir),
        "--apply",
        "--receipt",
        str(receipt),
    ]
    for flag, value in DRILL_PARAMS.items():
        cmd += [f"--{flag.replace('_', '-')}", str(value)]
    return cmd


def _run(cmd: list[str], crash_point: str | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop(ENV_CRASH, None)
    if crash_point is not None:
        env[ENV_CRASH] = crash_point
    return subprocess.run(
        cmd, env=env, capture_output=True, text=True, stdin=subprocess.DEVNULL
    )


def _read_receipt(path: Path) -> dict:
    return json.loads(path.read_text())


def run_ingest_crash_drill(
    points: tuple[str, ...] = CRASH_POINTS,
    base_dir: Path | str | None = None,
) -> dict:
    """Run the full drill; returns the ``repro.chaos/1`` report dict."""
    root = Path(
        base_dir
        if base_dir is not None
        else tempfile.mkdtemp(prefix="repro-ingest-drill-")
    )
    root.mkdir(parents=True, exist_ok=True)
    cache_dir = root / "cache"  # shared: base shards build once, then hit
    payload = root / "payload.jsonl"
    payload.write_text("\n".join(_payload_lines()) + "\n")

    # 1. The uninterrupted control run: the convergence target.
    control_receipt = root / "control" / "receipt.json"
    control_receipt.parent.mkdir(parents=True)
    control = _run(
        _ingest_cmd(cache_dir, root / "control" / "wal", control_receipt, payload)
    )
    if control.returncode != 0:
        raise RuntimeError(
            f"control ingest run failed ({control.returncode}):\n"
            f"{control.stderr[-2000:]}"
        )
    target = _read_receipt(control_receipt)
    results = []
    for point in points:
        point_dir = root / point
        wal_dir = point_dir / "wal"
        receipt = point_dir / "receipt.json"
        point_dir.mkdir(parents=True)

        # 2. Crash mid-pipeline: the injected SIGKILL must land.
        crashed = _run(
            _ingest_cmd(cache_dir, wal_dir, receipt, payload), crash_point=point
        )
        killed = crashed.returncode == -signal.SIGKILL

        # 3. Recover over the torn state: no batch, no injection.
        recovery = _run(_ingest_cmd(cache_dir, wal_dir, receipt, None))
        recovered = _read_receipt(receipt) if recovery.returncode == 0 else {}

        # 4. Resubmit the identical batch: duplicate no-op.
        resubmit = _run(_ingest_cmd(cache_dir, wal_dir, receipt, payload))
        resubmitted = _read_receipt(receipt) if resubmit.returncode == 0 else {}

        outcome = {
            "point": point,
            "crashed_by_sigkill": killed,
            "recovery_exit": recovery.returncode,
            "fingerprints_match": (
                bool(recovered)
                and recovered.get("fingerprints") == target["fingerprints"]
            ),
            "applied_seq": recovered.get("applied_seq"),
            "duplicate_reacked": (
                resubmitted.get("receipt", {}).get("duplicate") is True
            ),
            "no_double_apply": (
                resubmitted.get("applied_seq") == recovered.get("applied_seq")
                and resubmitted.get("fingerprints") == target["fingerprints"]
                and resubmitted.get("journaled") == recovered.get("journaled")
            ),
        }
        outcome["passed"] = all(
            (
                outcome["crashed_by_sigkill"],
                outcome["recovery_exit"] == 0,
                outcome["fingerprints_match"],
                outcome["duplicate_reacked"],
                outcome["no_double_apply"],
            )
        )
        if not outcome["passed"]:
            _LOG.warning(
                "ingest.drill.point_failed",
                point=point,
                crash_stderr=crashed.stderr[-500:],
                recovery_stderr=recovery.stderr[-500:],
            )
        results.append(outcome)

    report = {
        "schema": "repro.chaos/1",
        "drill": "ingest-crash",
        "params": dict(DRILL_PARAMS),
        "month": DRILL_MONTH,
        "country": DRILL_COUNTRY,
        "target_fingerprints": target["fingerprints"],
        "points": results,
        "passed": all(r["passed"] for r in results),
    }
    return report


def render_drill(report: dict) -> str:
    """The human-readable drill summary."""
    lines = [
        "INGEST-CRASH DRILL: journal replay converges after SIGKILL",
        f"append: {report['month']} {report['country']} "
        f"(params {report['params']})",
        f"{'point':<12} {'killed':<7} {'recovered':<10} "
        f"{'fingerprints':<13} {'dedupe':<7} verdict",
        "-" * 62,
    ]
    for row in report["points"]:
        lines.append(
            f"{row['point']:<12} "
            f"{'yes' if row['crashed_by_sigkill'] else 'NO':<7} "
            f"{'yes' if row['recovery_exit'] == 0 else 'NO':<10} "
            f"{'match' if row['fingerprints_match'] else 'DIVERGED':<13} "
            f"{'ok' if row['duplicate_reacked'] and row['no_double_apply'] else 'FAIL':<7} "
            f"{'pass' if row['passed'] else 'FAIL'}"
        )
    lines.append(
        "verdict: "
        + (
            "every crash point replayed to the uninterrupted fingerprints"
            if report["passed"]
            else "DRILL FAILED - recovery diverged from the control run"
        )
    )
    return "\n".join(lines)
