"""The ``repro.wal/1`` write-ahead journal behind ``repro ingest``.

Every accepted append batch is journaled *before* it is acknowledged:
the record is framed, CRC-checked, written to the current segment, and
``fsync``'d — only then does the caller see a receipt.  A crash at any
later point (apply, rebuild, serve swap) therefore never loses an acked
batch: startup replay re-reads the journal and re-derives the exact
same ledger.

On-disk layout (one directory per journal)::

    <root>/wal-00000001.seg        # segment files, rotated by size
    <root>/wal-00000002.seg
    <root>/checkpoint.json         # last applied seq + fingerprints

Each record is framed as an 8-byte little-endian header — ``u32 payload
length`` then ``u32 CRC32(payload)`` — followed by the payload, a
canonical JSON document::

    {"schema": "repro.wal/1", "seq": N, "format": "ndt",
     "key": "<sha256 of format + content>", "lines": [...], "meta": {}}

The ``key`` is a content-hash idempotency key: appending the same batch
twice (a client retry after a lost ack, a replayed journal) is a no-op
that returns the original sequence number.

Torn tails are tolerated by construction: a record is only ever damaged
by a crash mid-write, which means it was never fsync'd-and-acked, so
replay stops at the first bad frame of the *final* segment, truncates
the torn bytes (so later appends start from a clean offset), and keeps
every committed record before it.  Damage in a non-final segment is a
different beast — committed records would follow the hole — so that
raises :class:`WalCorruptionError` instead of silently dropping data.

Observability: ``wal.appends`` / ``wal.duplicates`` / ``wal.bytes``
count the append path; ``wal.replayed`` / ``wal.replay.duplicates`` /
``wal.torn`` the recovery path; torn tails also emit a structured
``wal.torn_tail`` warning naming the segment and offset.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Iterator

from repro.obs import get_logger, get_registry

#: Schema identifier stamped into every journal record and checkpoint.
WAL_SCHEMA = "repro.wal/1"

#: Frame header: u32 payload length, u32 CRC32(payload), little-endian.
_HEADER = struct.Struct("<II")

#: Per-record payload ceiling; a length field above this is damage, not
#: a record (keeps a corrupted length from provoking a giant read).
_MAX_PAYLOAD = 64 * 1024 * 1024

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 1024 * 1024

_CHECKPOINT_NAME = "checkpoint.json"

_LOG = get_logger("repro.ingest.wal")


class WalCorruptionError(RuntimeError):
    """Damage in a non-final segment: committed records follow the hole."""


def idempotency_key(format: str, lines: tuple[str, ...] | list[str]) -> str:
    """Content-hash key of one append batch (format + canonical lines)."""
    digest = sha256()
    digest.update(format.encode("utf-8"))
    for line in lines:
        digest.update(b"\0")
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One committed journal record."""

    seq: int
    format: str
    key: str
    lines: tuple[str, ...]
    meta: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class AppendResult:
    """What :meth:`WriteAheadLog.append` acknowledges."""

    seq: int
    key: str
    duplicate: bool


@dataclass
class ReplayReport:
    """What startup recovery found in the journal."""

    records: int = 0
    duplicates: int = 0
    torn: int = 0
    truncated_bytes: int = 0
    segments: int = 0


class WriteAheadLog:
    """Append-only journal with segment rotation and torn-tail recovery.

    Construction scans the directory and replays existing segments into
    the in-memory dedupe index (the records themselves are handed to
    the caller via :meth:`replay`), so a reopened journal immediately
    refuses duplicate keys and continues the sequence numbering.
    """

    def __init__(
        self,
        root: Path | str,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self.fsync = fsync
        self._keys: dict[str, int] = {}
        self._next_seq = 1
        self._handle = None
        self._segment_index = 0
        self._segment_size = 0
        self._records: list[WalRecord] = []
        self._report = self._scan()

    # -- recovery ------------------------------------------------------------

    def segments(self) -> list[Path]:
        """Segment files, journal order."""
        return sorted(self.root.glob("wal-*.seg"))

    def replay(self) -> tuple[list[WalRecord], ReplayReport]:
        """The committed records (deduplicated, seq order) + scan report."""
        return list(self._records), self._report

    def _scan(self) -> ReplayReport:
        report = ReplayReport()
        registry = get_registry()
        segments = self.segments()
        report.segments = len(segments)
        for position, segment in enumerate(segments):
            final = position == len(segments) - 1
            blob = segment.read_bytes()
            valid_end = self._scan_segment(segment, blob, final, report)
            if valid_end < len(blob):
                # Torn tail of the final segment: the damaged bytes were
                # never acked (ack happens only after fsync), so truncate
                # them away and let the next append start clean.
                report.torn += 1
                report.truncated_bytes += len(blob) - valid_end
                registry.counter("wal.torn").inc()
                _LOG.warning(
                    "wal.torn_tail",
                    segment=segment.name,
                    offset=valid_end,
                    dropped_bytes=len(blob) - valid_end,
                )
                with open(segment, "r+b") as handle:
                    handle.truncate(valid_end)
        if segments:
            self._segment_index = int(segments[-1].stem.split("-")[1])
            self._segment_size = segments[-1].stat().st_size
        if report.records:
            registry.counter("wal.replayed").inc(report.records)
        if report.duplicates:
            registry.counter("wal.replay.duplicates").inc(report.duplicates)
        return report

    def _scan_segment(
        self, segment: Path, blob: bytes, final: bool, report: ReplayReport
    ) -> int:
        """Absorb *blob*'s valid frames; returns the last valid offset."""
        offset = 0
        for record, end in _frames(segment, blob, final):
            if record.key in self._keys:
                report.duplicates += 1
            else:
                self._keys[record.key] = record.seq
                self._records.append(record)
                report.records += 1
            self._next_seq = max(self._next_seq, record.seq + 1)
            offset = end
        return offset

    # -- append --------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Highest committed sequence number (0 when empty)."""
        return self._next_seq - 1

    def seq_for(self, key: str) -> int | None:
        """The committed seq of *key*, or None if never journaled."""
        return self._keys.get(key)

    def append(
        self,
        format: str,
        lines: list[str] | tuple[str, ...],
        meta: dict[str, str] | None = None,
    ) -> AppendResult:
        """Journal one batch durably; duplicate content is a no-op.

        The write is flushed and ``fsync``'d before this returns, so a
        caller that acks on return has at-least-once semantics: the
        batch survives any subsequent crash.
        """
        registry = get_registry()
        lines = tuple(lines)
        key = idempotency_key(format, lines)
        existing = self._keys.get(key)
        if existing is not None:
            registry.counter("wal.duplicates").inc()
            return AppendResult(seq=existing, key=key, duplicate=True)
        seq = self._next_seq
        payload = json.dumps(
            {
                "schema": WAL_SCHEMA,
                "seq": seq,
                "format": format,
                "key": key,
                "lines": list(lines),
                "meta": dict(meta or {}),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        handle = self._segment_handle(len(frame))
        handle.write(frame)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._segment_size += len(frame)
        self._next_seq = seq + 1
        self._keys[key] = seq
        self._records.append(
            WalRecord(seq=seq, format=format, key=key, lines=lines, meta=dict(meta or {}))
        )
        registry.counter("wal.appends").inc()
        registry.counter("wal.bytes").inc(len(frame))
        return AppendResult(seq=seq, key=key, duplicate=False)

    def _segment_handle(self, incoming: int):
        """The current segment's file handle, rotating by size first."""
        rotate = (
            self._handle is not None
            and self._segment_size > 0
            and self._segment_size + incoming > self.max_segment_bytes
        )
        if self._handle is None or rotate:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if rotate or self._segment_index == 0:
                self._segment_index += 1
                self._segment_size = 0
            path = self.root / f"wal-{self._segment_index:08d}.seg"
            self._handle = open(path, "ab")
            self._segment_size = path.stat().st_size
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- checkpoint ----------------------------------------------------------

    def checkpoint_path(self) -> Path:
        return self.root / _CHECKPOINT_NAME

    def write_checkpoint(self, applied_seq: int, **extra: object) -> Path:
        """Atomically record that everything through *applied_seq* applied."""
        document = {
            "schema": WAL_SCHEMA,
            "applied_seq": applied_seq,
            **extra,
        }
        path = self.checkpoint_path()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        get_registry().counter("wal.checkpoints").inc()
        return path

    def read_checkpoint(self) -> dict | None:
        """The last committed checkpoint, or None (absent/damaged)."""
        try:
            document = json.loads(self.checkpoint_path().read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict) or document.get("schema") != WAL_SCHEMA:
            return None
        return document


def _frames(
    segment: Path, blob: bytes, final: bool
) -> Iterator[tuple[WalRecord, int]]:
    """Valid ``(record, end_offset)`` frames of one segment, in order.

    Stops cleanly at the first torn/damaged frame of the final segment;
    raises :class:`WalCorruptionError` for damage anywhere else.
    """
    offset = 0
    size = len(blob)
    while offset < size:
        reason = None
        end = offset
        if size - offset < _HEADER.size:
            reason = "truncated frame header"
        else:
            length, crc = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            if length > _MAX_PAYLOAD:
                reason = f"implausible payload length {length}"
            elif start + length > size:
                reason = "truncated payload"
            else:
                payload = blob[start : start + length]
                if zlib.crc32(payload) != crc:
                    reason = "CRC mismatch"
                else:
                    try:
                        document = json.loads(payload)
                        if document.get("schema") != WAL_SCHEMA:
                            raise ValueError(
                                f"foreign schema {document.get('schema')!r}"
                            )
                        record = WalRecord(
                            seq=int(document["seq"]),
                            format=str(document["format"]),
                            key=str(document["key"]),
                            lines=tuple(document["lines"]),
                            meta=dict(document.get("meta") or {}),
                        )
                    except (KeyError, TypeError, ValueError) as exc:
                        reason = f"bad record payload: {exc}"
                    else:
                        end = start + length
        if reason is not None:
            if not final:
                raise WalCorruptionError(
                    f"damaged frame in non-final segment {segment.name} "
                    f"at offset {offset}: {reason}"
                )
            return  # torn tail; caller truncates past the last valid offset
        yield record, end
        offset = end
