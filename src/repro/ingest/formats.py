"""Wire-format adapters behind ``repro ingest`` and ``POST /v1/ingest``.

One adapter per appendable feed. Each knows how to

* **canonicalise** a submitted batch — run the records through the
  existing strict/lenient parser (with quarantine under the error
  budget) and re-serialise survivors in the canonical row form, so the
  journal stores exactly one byte representation of each record and
  content-hash idempotency keys are stable across client formatting;
* **partition** canonical rows into the month×country shards they dirty
  (Atlas traceroutes partition by month only; a PeeringDB dump is one
  whole-month shard);
* **build a shard** — the partition's rows as the dataset's own packed
  column form, with a shard-local string pool; and
* **merge** shards onto the base dataset — append-at-end: base rows
  keep their original order, appended rows follow in partition order,
  so aggregations keyed on first-encounter order are untouched for base
  data and the merged value is a pure function of (base, shards) — the
  property the incremental-vs-cold byte-identity check rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.ingest.quarantine import Quarantine
from repro.timeseries.month import Month

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scenario import Scenario


class IngestFormatError(ValueError):
    """A submitted batch that can never be applied (not quarantinable)."""


@dataclass(frozen=True, slots=True, order=True)
class PartitionKey:
    """One dirty shard: a month, and a country where the feed has one."""

    month: str
    country: str = ""

    @property
    def shard_id(self) -> str:
        """The suffix of the shard's cache entry name."""
        return f"{self.month}.{self.country or 'all'}"


def _canonical_rows(
    component: str,
    lines: Iterable[str],
    parse: Callable[[str], object],
    canonical: Callable[[object], str],
    strict: bool,
) -> tuple[list[str], Quarantine | None]:
    """Parse every row, keep survivors in canonical serialisation."""
    quarantine = None if strict else Quarantine(component)
    accepted: list[str] = []
    for line_no, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            accepted.append(canonical(parse(raw)))
        except ValueError as exc:
            if quarantine is None:
                raise
            quarantine.admit(line_no, raw, str(exc) or type(exc).__name__)
    if quarantine is not None:
        quarantine.check(len(accepted))
    return accepted, quarantine


class NDTFormat:
    """M-Lab NDT rows (the ``parse_ndt_jsonl`` JSONL layout)."""

    name = "ndt"
    dataset = "ndt_tests"

    def canonicalise(
        self, lines: Iterable[str], meta: dict[str, str], strict: bool
    ) -> tuple[list[str], Quarantine | None]:
        from repro.mlab.ndt import NDTResult

        return _canonical_rows(
            "ingest_ndt", lines, NDTResult.from_json, lambda r: r.to_json(), strict
        )

    def partition(
        self, lines: list[str], meta: dict[str, str]
    ) -> dict[PartitionKey, list[str]]:
        from repro.mlab.ndt import NDTResult

        shards: dict[PartitionKey, list[str]] = {}
        for line in lines:
            result = NDTResult.from_json(line)
            key = PartitionKey(month=str(result.month), country=result.country)
            shards.setdefault(key, []).append(line)
        return shards

    def build_shard(
        self, scenario: "Scenario", key: PartitionKey, lines: list[str], meta: dict
    ):
        from repro.mlab.columns import NDTColumns
        from repro.mlab.ndt import NDTResult

        rows = [NDTResult.from_json(line) for line in lines]
        countries = sorted({r.country for r in rows})
        code = {cc: i for i, cc in enumerate(countries)}
        return NDTColumns(
            countries=countries,
            month_ordinal=np.array(
                [Month.from_date(r.date).ordinal() for r in rows], dtype=np.int32
            ),
            day=np.array([r.date.day for r in rows], dtype=np.uint8),
            country_idx=np.array([code[r.country] for r in rows], dtype=np.uint16),
            asn=np.array([r.asn for r in rows], dtype=np.int64),
            download_mbps=np.array([r.download_mbps for r in rows], dtype=np.float64),
            upload_mbps=np.array([r.upload_mbps for r in rows], dtype=np.float64),
            min_rtt_ms=np.array([r.min_rtt_ms for r in rows], dtype=np.float64),
            loss_rate=np.array([r.loss_rate for r in rows], dtype=np.float64),
        )

    def merge(self, scenario: "Scenario", base, shards):
        from repro.mlab.columns import NDTColumns

        if not shards:
            return base
        countries, remaps = _extend_pool(
            base.countries, [shard.countries for _key, shard in shards]
        )
        batches = [shard for _key, shard in shards]
        return NDTColumns(
            countries=countries,
            month_ordinal=_cat(base, batches, "month_ordinal"),
            day=_cat(base, batches, "day"),
            country_idx=np.concatenate(
                [base.country_idx]
                + [remap[s.country_idx] for remap, s in zip(remaps, batches)]
            ).astype(np.uint16),
            asn=_cat(base, batches, "asn"),
            download_mbps=_cat(base, batches, "download_mbps"),
            upload_mbps=_cat(base, batches, "upload_mbps"),
            min_rtt_ms=_cat(base, batches, "min_rtt_ms"),
            loss_rate=_cat(base, batches, "loss_rate"),
        )


class AtlasFormat:
    """RIPE Atlas traceroute results (the GPDNS campaign layout).

    Traceroutes that never reached their destination carry no usable
    RTT, so they are rejected at the door (quarantined in lenient mode)
    rather than silently diluting per-probe minima.  Partitioning is by
    month only: probe metadata, not the row, decides the country.
    """

    name = "atlas"
    dataset = "gpdns_traceroutes"

    def canonicalise(
        self, lines: Iterable[str], meta: dict[str, str], strict: bool
    ) -> tuple[list[str], Quarantine | None]:
        from repro.atlas.traceroute import TracerouteResult

        def parse(raw: str) -> TracerouteResult:
            result = TracerouteResult.from_json(raw)
            if not result.reached_destination():
                raise ValueError("traceroute did not reach its destination")
            return result

        return _canonical_rows(
            "ingest_atlas", lines, parse, lambda r: r.to_json(), strict
        )

    def partition(
        self, lines: list[str], meta: dict[str, str]
    ) -> dict[PartitionKey, list[str]]:
        from repro.atlas.traceroute import TracerouteResult

        shards: dict[PartitionKey, list[str]] = {}
        for line in lines:
            result = TracerouteResult.from_json(line)
            shards.setdefault(PartitionKey(month=str(result.month)), []).append(line)
        return shards

    def build_shard(
        self, scenario: "Scenario", key: PartitionKey, lines: list[str], meta: dict
    ):
        from repro.atlas.columns import TracerouteColumns
        from repro.atlas.traceroute import TracerouteResult

        rows = [TracerouteResult.from_json(line) for line in lines]

        def probe_country(probe_id: int) -> str:
            try:
                return scenario.probes.by_id(probe_id).country
            except KeyError:
                return "ZZ"  # unknown probe: parked under the reserved code

        per_row_cc = [probe_country(r.probe_id) for r in rows]
        countries = sorted(set(per_row_cc))
        code = {cc: i for i, cc in enumerate(countries)}
        return TracerouteColumns(
            countries=countries,
            msm_id=rows[0].msm_id if rows else 0,
            dst_addr=rows[0].dst_addr if rows else "",
            probe_id=np.array([r.probe_id for r in rows], dtype=np.int64),
            country_idx=np.array([code[cc] for cc in per_row_cc], dtype=np.uint16),
            month_ordinal=np.array(
                [r.month.ordinal() for r in rows], dtype=np.int32
            ),
            sample=np.zeros(len(rows), dtype=np.uint8),
            timestamp=np.array([r.timestamp for r in rows], dtype=np.int64),
            final_rtt=np.array(
                [r.destination_rtt() for r in rows], dtype=np.float64
            ),
        )

    def merge(self, scenario: "Scenario", base, shards):
        from repro.atlas.columns import TracerouteColumns

        if not shards:
            return base
        countries, remaps = _extend_pool(
            base.countries, [shard.countries for _key, shard in shards]
        )
        batches = [shard for _key, shard in shards]
        return TracerouteColumns(
            countries=countries,
            msm_id=base.msm_id,
            dst_addr=base.dst_addr,
            probe_id=_cat(base, batches, "probe_id"),
            country_idx=np.concatenate(
                [base.country_idx]
                + [remap[s.country_idx] for remap, s in zip(remaps, batches)]
            ).astype(np.uint16),
            month_ordinal=_cat(base, batches, "month_ordinal"),
            sample=_cat(base, batches, "sample"),
            timestamp=_cat(base, batches, "timestamp"),
            final_rtt=_cat(base, batches, "final_rtt"),
        )


class PeeringDBFormat:
    """Whole monthly PeeringDB dumps (the public-dump JSON layout).

    One submitted batch is one dump for one month — ``meta["month"]``
    names it — and merging inserts (or replaces) that month's snapshot
    in the archive.
    """

    name = "peeringdb"
    dataset = "peeringdb"
    #: Snapshot feed: a re-submitted month replaces, never accumulates.
    accumulate = False

    def canonicalise(
        self, lines: Iterable[str], meta: dict[str, str], strict: bool
    ) -> tuple[list[str], Quarantine | None]:
        from repro.peeringdb.schema import PeeringDBSnapshot

        month = meta.get("month", "")
        try:
            Month.parse(month)
        except ValueError:
            raise IngestFormatError(
                "peeringdb batches need meta['month'] as YYYY-MM "
                f"(got {month!r})"
            ) from None
        text = "\n".join(lines)
        quarantine = None if strict else Quarantine("ingest_peeringdb")
        snapshot = PeeringDBSnapshot.from_json(
            text, strict=strict, quarantine=quarantine
        )
        return [snapshot.to_json()], quarantine

    def partition(
        self, lines: list[str], meta: dict[str, str]
    ) -> dict[PartitionKey, list[str]]:
        return {PartitionKey(month=meta["month"]): list(lines)}

    def build_shard(
        self, scenario: "Scenario", key: PartitionKey, lines: list[str], meta: dict
    ):
        from repro.peeringdb.schema import PeeringDBSnapshot

        return PeeringDBSnapshot.from_json("\n".join(lines))

    def merge(self, scenario: "Scenario", base, shards):
        from repro.peeringdb.archive import PeeringDBArchive

        if not shards:
            return base
        snapshots = {month: snapshot for month, snapshot in base.items()}
        for key, shard in shards:
            snapshots[Month.parse(key.month)] = shard
        return PeeringDBArchive(snapshots)


def _extend_pool(
    base_pool: list[str], shard_pools: list[list[str]]
) -> tuple[list[str], list[np.ndarray]]:
    """Base string pool extended in place, plus per-shard index remaps.

    Existing pool entries keep their indices (base rows need no rewrite);
    genuinely new values are appended in first-encounter order across
    the shard sequence.
    """
    pool = list(base_pool)
    index = {value: i for i, value in enumerate(pool)}
    remaps = []
    for shard_pool in shard_pools:
        remap = np.empty(len(shard_pool), dtype=np.int64)
        for i, value in enumerate(shard_pool):
            if value not in index:
                index[value] = len(pool)
                pool.append(value)
            remap[i] = index[value]
        remaps.append(remap)
    return pool, remaps


def _cat(base, batches, column: str) -> np.ndarray:
    """Base column with every shard's column appended, dtype preserved."""
    base_array = getattr(base, column)
    return np.concatenate(
        [base_array] + [getattr(batch, column) for batch in batches]
    ).astype(base_array.dtype)


#: Registered adapters, keyed by their wire name.
FORMATS: dict[str, object] = {
    adapter.name: adapter
    for adapter in (NDTFormat(), AtlasFormat(), PeeringDBFormat())
}


def get_format(name: str):
    """The adapter for *name*; raises :class:`KeyError` when unknown."""
    return FORMATS[name]
