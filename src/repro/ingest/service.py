"""The durable ingestion front-end: journal-before-ack, bounded backlog.

:class:`IngestService` sits between the transports (``repro ingest``,
``POST /v1/ingest/<format>``) and the journal.  A submission is

1. **admitted** — rejected with :class:`IngestBacklogError` (HTTP 429 +
   Retry-After) when the un-applied backlog is at the bound, so a slow
   rebuild pushes back on producers instead of buffering unboundedly;
2. **validated** — run through the format adapter's strict/lenient
   parser with quarantine; a batch with no salvageable records raises
   :class:`IngestValidationError` (HTTP 422);
3. **journaled** — appended to the WAL and ``fsync``'d; only then is
   the receipt issued.  Delivery is therefore at-least-once: an acked
   batch survives any crash, and the content-hash idempotency key makes
   redelivery a no-op.

Application (rebuilding dirty partitions and refreshing the serving
surface) is decoupled from submission: :func:`apply_ingest` folds the
journal into an overlay scenario, rebuilds, and checkpoints
``applied_seq`` so startup recovery knows where acked-but-unapplied
work begins.

Crash-point injection: when ``REPRO_INGEST_CRASH`` names one of
:data:`CRASH_POINTS`, :func:`maybe_crash` SIGKILLs the process at that
point — the hooks the ``repro chaos --drill ingest-crash`` harness
drives to prove recovery converges (see ``docs/RELIABILITY.md``).
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.ingest.formats import FORMATS, IngestFormatError
from repro.ingest.overlay import (
    IngestOverlay,
    build_overlay,
    dataset_fingerprint,
)
from repro.ingest.wal import ReplayReport, WriteAheadLog
from repro.obs import get_logger, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.cache import DatasetCache
    from repro.serve.artifacts import ArtifactStore

_LOG = get_logger("repro.ingest.service")

#: Environment variable naming the injected crash point, if any.
ENV_CRASH = "REPRO_INGEST_CRASH"

#: Valid injection points, in pipeline order: after the journal fsync
#: (acked, nothing applied), after the dataset rebuild (store not yet
#: built), and after the store build (checkpoint/swap not yet done).
CRASH_POINTS = ("post-ack", "mid-rebuild", "mid-swap")

#: Default bound on acked-but-unapplied batches.
DEFAULT_MAX_BACKLOG = 64

#: Transports translate a backlog rejection into 429 + this many seconds.
RETRY_AFTER_SECONDS = 5


def maybe_crash(point: str) -> None:
    """SIGKILL the process if the injected crash point is *point*.

    SIGKILL, not an exception: the drill must exercise real torn state
    (no ``finally`` blocks, no atexit, no flushing) exactly as a power
    loss or OOM kill would leave it.
    """
    if os.environ.get(ENV_CRASH) == point:
        os.kill(os.getpid(), signal.SIGKILL)


class IngestBacklogError(RuntimeError):
    """The un-applied backlog is at its bound; retry after a rebuild."""

    def __init__(self, backlog: int, limit: int):
        self.backlog = backlog
        self.limit = limit
        self.retry_after = RETRY_AFTER_SECONDS
        super().__init__(
            f"ingest backlog at bound ({backlog}/{limit} batches un-applied)"
        )


class IngestValidationError(ValueError):
    """The submitted batch contained no applicable records."""


@dataclass(frozen=True, slots=True)
class Receipt:
    """The at-least-once acknowledgement of one journaled batch."""

    seq: int
    key: str
    format: str
    duplicate: bool
    accepted: int
    quarantined: int
    partitions: tuple[str, ...]
    backlog: int

    def to_dict(self) -> dict:
        return {
            "schema": "repro.ingest-receipt/1",
            "seq": self.seq,
            "key": self.key,
            "format": self.format,
            "duplicate": self.duplicate,
            "accepted": self.accepted,
            "quarantined": self.quarantined,
            "partitions": list(self.partitions),
            "backlog": self.backlog,
        }


@dataclass(frozen=True, slots=True)
class ApplyResult:
    """What one journal application produced."""

    applied_seq: int
    overlay: IngestOverlay
    dataset_fingerprints: dict[str, str]
    artifact_fingerprint: str
    report_sha256: str
    store: "ArtifactStore" = field(repr=False)
    scenario: object = field(repr=False)
    context: object = field(repr=False)

    def fingerprints(self) -> dict[str, object]:
        return {
            "datasets": dict(self.dataset_fingerprints),
            "artifacts": self.artifact_fingerprint,
            "report_sha256": self.report_sha256,
        }


class IngestService:
    """Durable append acceptance over one write-ahead journal.

    Construction *is* recovery: the journal directory is scanned, torn
    final records truncated, committed records replayed into the dedupe
    index, and the last checkpoint read — so a process that crashed at
    any point resumes with every acked batch intact and knows exactly
    which suffix still needs applying.
    """

    def __init__(
        self,
        wal_dir: Path | str,
        max_backlog: int = DEFAULT_MAX_BACKLOG,
        strict: bool = False,
        fsync: bool = True,
    ) -> None:
        self.wal = WriteAheadLog(wal_dir, fsync=fsync)
        self.max_backlog = max_backlog
        self.strict = strict
        self._lock = threading.Lock()
        records, report = self.wal.replay()
        self.replay_report: ReplayReport = report
        checkpoint = self.wal.read_checkpoint() or {}
        self.applied_seq = int(checkpoint.get("applied_seq", 0))
        self.applied_fingerprints = checkpoint.get("fingerprints") or {}
        if records:
            _LOG.info(
                "ingest.recovered",
                records=report.records,
                torn=report.torn,
                applied_seq=self.applied_seq,
                pending=self.backlog(),
            )
        registry = get_registry()
        registry.gauge("ingest.backlog").set(self.backlog())

    # -- state ---------------------------------------------------------------

    def backlog(self) -> int:
        """Acked batches not yet covered by a committed checkpoint."""
        return max(0, self.wal.last_seq - self.applied_seq)

    def overlay(self) -> IngestOverlay:
        """The whole journal folded into a partition overlay."""
        records, _report = self.wal.replay()
        return build_overlay(records)

    def status(self) -> dict:
        """The ``/healthz`` ingest section."""
        return {
            "journaled": self.wal.last_seq,
            "applied_seq": self.applied_seq,
            "backlog": self.backlog(),
            "max_backlog": self.max_backlog,
            "torn_recovered": self.replay_report.torn,
        }

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        format_name: str,
        lines: Iterable[str],
        meta: dict[str, str] | None = None,
    ) -> Receipt:
        """Validate, journal, fsync, and ack one batch.

        Raises:
            KeyError: unknown format (transports map this to 404).
            IngestBacklogError: the backlog bound is hit (429).
            IngestValidationError: nothing in the batch is applicable,
                or (via the adapters) the batch is structurally invalid
                (422).  The error-budget and strict-mode parser errors
                propagate with the same mapping.
        """
        from repro.ingest.wal import idempotency_key

        adapter = FORMATS[format_name]
        meta = dict(meta or {})
        registry = get_registry()
        with self._lock:
            try:
                canonical, quarantine = adapter.canonicalise(
                    lines, meta, self.strict
                )
            except IngestFormatError:
                registry.counter("ingest.rejected.invalid").inc()
                raise
            except ValueError as exc:
                registry.counter("ingest.rejected.invalid").inc()
                raise IngestValidationError(str(exc)) from exc
            if not canonical:
                registry.counter("ingest.rejected.invalid").inc()
                raise IngestValidationError(
                    "batch contains no applicable records"
                )
            # Admission control applies to NEW batches only: a retry of
            # an already-journaled batch is re-acked even at full
            # backlog — the client lost the ack, not the data, and a
            # 429 here would defeat at-least-once delivery.
            already = self.wal.seq_for(idempotency_key(format_name, canonical))
            backlog = self.backlog()
            if already is None and backlog >= self.max_backlog:
                registry.counter("ingest.rejected.backlog").inc()
                raise IngestBacklogError(backlog, self.max_backlog)
            partitions = adapter.partition(canonical, meta)
            result = self.wal.append(format_name, canonical, meta)
            registry.counter("ingest.accepted").inc()
            registry.gauge("ingest.backlog").set(self.backlog())
        # The batch is durable and acked from here on: a crash now loses
        # nothing — startup replay re-applies it.
        maybe_crash("post-ack")
        return Receipt(
            seq=result.seq,
            key=result.key,
            format=format_name,
            duplicate=result.duplicate,
            accepted=len(canonical),
            quarantined=len(quarantine) if quarantine is not None else 0,
            partitions=tuple(sorted(key.shard_id for key in partitions)),
            backlog=self.backlog(),
        )

    # -- application ---------------------------------------------------------

    def mark_applied(self, applied_seq: int, fingerprints: dict) -> None:
        """Commit the checkpoint: everything through *applied_seq* applied."""
        self.wal.write_checkpoint(applied_seq, fingerprints=fingerprints)
        self.applied_seq = applied_seq
        self.applied_fingerprints = fingerprints
        registry = get_registry()
        registry.counter("ingest.applied").inc()
        registry.gauge("ingest.backlog").set(self.backlog())


def apply_ingest(
    service: IngestService,
    cache: "DatasetCache | None",
    params: dict[str, object],
    jobs: int = 1,
    strict: bool = True,
) -> ApplyResult:
    """Rebuild the world under the service's overlay and checkpoint it.

    Only dirty partitions pay a rebuild: base datasets come from the
    cache (or the generators) untouched, overlay shards load from their
    own cache entries when their content digest matches, and the sealed
    :class:`~repro.serve.artifacts.ArtifactStore` is rebuilt from the
    merged world.  The checkpoint (seq + fingerprints) commits last —
    a crash anywhere before it re-applies idempotently on restart.
    """
    from repro.core.scenario import Scenario
    from repro.serve.artifacts import build_artifact_store
    from repro.serve.handlers import ServeContext
    from repro.serve.pool import ScenarioPool

    target_seq = service.wal.last_seq
    overlay = service.overlay()
    scenario = Scenario(
        cache=cache,
        strict=strict,
        overlay=overlay if overlay else None,
        **params,  # type: ignore[arg-type]
    )
    scenario.build_all(max_workers=jobs)
    # Datasets rebuilt (dirty shards merged); the serving surface is not.
    maybe_crash("mid-rebuild")

    pool = ScenarioPool(cache=cache, strict=strict)
    pool_params: dict[str, object] = dict(params)
    if overlay:
        pool_params["overlay"] = overlay
    pool.seed(scenario, **pool_params)
    context = ServeContext(pool=pool, params=pool_params)
    store = build_artifact_store(context, workers=jobs)
    # Store sealed; neither the checkpoint nor any swap has happened.
    maybe_crash("mid-swap")

    fingerprints = {
        name: dataset_fingerprint(scenario.materialise(name))
        for name in overlay.datasets()
    }
    report = store.get("/v1/report")
    result = ApplyResult(
        applied_seq=target_seq,
        overlay=overlay,
        dataset_fingerprints=fingerprints,
        artifact_fingerprint=store.fingerprint(),
        report_sha256=report.sha256 if report is not None else "",
        store=store,
        scenario=scenario,
        context=context,
    )
    service.mark_applied(target_seq, result.fingerprints())
    return result
