"""Journaled appends as a partition overlay on the base datasets.

The scenario's base datasets stay exactly what the synthetic generators
(or a warm cache) produce — appended records never touch those cache
entries.  Instead the journal is folded into an :class:`IngestOverlay`:
per affected dataset, the sorted list of dirty month×country partitions
and their canonical rows.  :func:`apply_overlay` runs on a dataset's way
out of materialisation and

* loads each dirty partition's packed shard from the cache
  (``ingest.partition.hit``) or builds it from the rows
  (``ingest.partition.built``) — shard entries are named
  ``<dataset>@<month>.<country>`` and keyed on the scenario params plus
  the partition's content digest and the ingest code fingerprint, so an
  append only ever rebuilds the partitions whose content changed;
* merges the shards onto the base with the adapter's pure append-at-end
  merge.

Untouched datasets pass through unchanged, untouched partitions report
cache hits, and because the merge is a pure function of (base, shards),
an incremental refresh is byte-identical to a full cold rebuild under
the same overlay — the acceptance property the drill verifies via
:func:`dataset_fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.ingest.formats import FORMATS, PartitionKey
from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scenario import Scenario
    from repro.ingest.wal import WalRecord


@lru_cache(maxsize=1)
def ingest_code_fingerprint() -> str:
    """Digest of the adapter/overlay sources, part of every shard key.

    Shard bytes depend on this module and the format adapters, which
    :func:`repro.exec.dag.code_fingerprint` does not cover (the base
    dataset's generators do not import them), so shard cache entries
    carry their own code fingerprint and go stale when this code does.
    """
    digest = hashlib.sha256()
    here = Path(__file__).parent
    for name in ("formats.py", "overlay.py"):
        digest.update((here / name).read_bytes())
    return digest.hexdigest()[:16]


def _adapter_for_dataset(dataset: str):
    for adapter in FORMATS.values():
        if adapter.dataset == dataset:
            return adapter
    raise KeyError(f"no ingest format feeds dataset {dataset!r}")


class IngestOverlay:
    """Immutable view of the journal as per-dataset dirty partitions.

    Equality and hashing go through the content fingerprint, so the
    overlay can ride inside scenario parameters — two pools keyed on the
    same journal state share one warm scenario, and a new append changes
    the key and forces exactly one rebuild.
    """

    def __init__(
        self, ledger: dict[str, dict[PartitionKey, tuple[str, ...]]]
    ) -> None:
        self._ledger: dict[str, list[tuple[PartitionKey, tuple[str, ...]]]] = {
            dataset: sorted(partitions.items())
            for dataset, partitions in sorted(ledger.items())
            if partitions
        }
        digest = hashlib.sha256()
        for dataset, partitions in self._ledger.items():
            digest.update(dataset.encode())
            for key, lines in partitions:
                digest.update(key.shard_id.encode())
                for line in lines:
                    digest.update(b"\0")
                    digest.update(line.encode())
        self.fingerprint = digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IngestOverlay)
            and other.fingerprint == self.fingerprint
        )

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __repr__(self) -> str:
        return f"IngestOverlay({self.fingerprint[:12]}, {self.summary()})"

    def __bool__(self) -> bool:
        return bool(self._ledger)

    def datasets(self) -> list[str]:
        """Datasets with at least one dirty partition, sorted."""
        return list(self._ledger)

    def partitions(
        self, dataset: str
    ) -> list[tuple[PartitionKey, tuple[str, ...]]]:
        """The dirty partitions of *dataset*, sorted by (month, country)."""
        return list(self._ledger.get(dataset, []))

    def summary(self) -> dict[str, list[str]]:
        """dataset -> dirty shard ids, for receipts and healthz."""
        return {
            dataset: [key.shard_id for key, _lines in partitions]
            for dataset, partitions in self._ledger.items()
        }


def build_overlay(records: Iterable["WalRecord"]) -> IngestOverlay:
    """Fold journal records (in seq order) into an overlay.

    Row feeds accumulate rows per partition in journal order; snapshot
    feeds (PeeringDB) keep only the latest record per partition, the
    replace semantics a monthly dump implies.
    """
    ledger: dict[str, dict[PartitionKey, list[str]]] = {}
    for record in records:
        adapter = FORMATS.get(record.format)
        if adapter is None:
            raise KeyError(f"journal names unknown ingest format {record.format!r}")
        partitions = ledger.setdefault(adapter.dataset, {})
        accumulate = getattr(adapter, "accumulate", True)
        for key, lines in adapter.partition(list(record.lines), record.meta).items():
            if accumulate:
                partitions.setdefault(key, []).extend(lines)
            else:
                partitions[key] = list(lines)
    return IngestOverlay(
        {
            dataset: {key: tuple(lines) for key, lines in partitions.items()}
            for dataset, partitions in ledger.items()
        }
    )


def apply_overlay(scenario: "Scenario", name: str, base):
    """*base* with the scenario overlay's shards for *name* merged in.

    Shards come from the dataset cache when their content digest
    matches (``ingest.partition.hit``) and are built from the canonical
    rows otherwise (``ingest.partition.built``) — the counters are the
    acceptance evidence that an append rebuilds only what it touched.
    """
    overlay: IngestOverlay = scenario.overlay  # type: ignore[assignment]
    partitions = overlay.partitions(name)
    if not partitions:
        return base
    adapter = _adapter_for_dataset(name)
    registry = get_registry()
    code = ingest_code_fingerprint()
    shards = []
    for key, lines in partitions:
        digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]
        shard_name = f"{name}@{key.shard_id}"
        params = {
            **scenario.cache_params(),
            "partition": key.shard_id,
            "digest": digest,
            "ingest_code": code,
        }
        shard = None
        if scenario.cache is not None:
            from repro.exec.cache import CacheMiss

            cached = scenario.cache.load(shard_name, params)
            if not isinstance(cached, CacheMiss):
                registry.counter("ingest.partition.hit").inc()
                shard = cached
        if shard is None:
            shard = adapter.build_shard(scenario, key, list(lines), {})
            registry.counter("ingest.partition.built").inc()
            if scenario.cache is not None:
                scenario.cache.store(shard_name, params, shard)
        shards.append((key, shard))
    return adapter.merge(scenario, base, shards)


def dataset_fingerprint(value) -> str:
    """Content digest of one materialised dataset value.

    Column batches hash their kind, pools, and raw buffers; anything
    else hashes its pickle.  Used by the crash drill to prove a
    recovered world converges on the uninterrupted one.
    """
    import numpy as np

    from repro.columnar import ColumnBatch

    digest = hashlib.sha256()
    if isinstance(value, ColumnBatch):
        digest.update(value.kind.encode())
        digest.update(
            json.dumps(value.meta(), sort_keys=True, default=str).encode()
        )
        for column_name, array in value.columns().items():
            digest.update(column_name.encode())
            digest.update(np.ascontiguousarray(array).data)
    else:
        import pickle

        digest.update(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    return digest.hexdigest()
