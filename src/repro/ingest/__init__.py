"""Durable streaming ingestion: quarantine, WAL, formats, and recovery.

The package has two halves:

* :mod:`repro.ingest.quarantine` — the per-record quarantine / error
  budget machinery every lenient parser uses (the historical
  ``repro.ingest`` module; its API is re-exported here unchanged).
* The durable append path — a checksummed, fsync'd write-ahead journal
  (:mod:`repro.ingest.wal`, schema ``repro.wal/1``), wire-format
  adapters that validate and partition appended records
  (:mod:`repro.ingest.formats`), the partition overlay that merges
  appended shards onto cached base datasets
  (:mod:`repro.ingest.overlay`), and the :class:`IngestService`
  front-end with journal-before-ack at-least-once delivery
  (:mod:`repro.ingest.service`).

Delivery semantics, the journal format, backpressure, and crash
recovery are documented in ``docs/INGEST.md``; the ``repro chaos
--drill ingest-crash`` harness (:mod:`repro.ingest.drill`) proves the
recovery story end to end.

Heavier submodules (service, overlay, drill) are imported lazily by
their users; importing ``repro.ingest`` itself stays as cheap as the
old single-module form so parser hot paths pay nothing new.
"""

from __future__ import annotations

from repro.ingest.quarantine import (
    DEFAULT_BUDGET,
    ErrorBudget,
    ErrorBudgetExceeded,
    Quarantine,
    QuarantinedRecord,
    quarantining_parse,
)

__all__ = [
    "DEFAULT_BUDGET",
    "ErrorBudget",
    "ErrorBudgetExceeded",
    "Quarantine",
    "QuarantinedRecord",
    "quarantining_parse",
]
