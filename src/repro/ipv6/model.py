"""Per-country IPv6 adoption time series.

The on-disk layout flattens Meta's dashboard export to monthly samples::

    country,month,ipv6_pct
    VE,2023-06,1.5
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

from repro.timeseries.month import Month
from repro.timeseries.panel import CountryPanel
from repro.timeseries.series import MonthlySeries


class AdoptionDataset:
    """Monthly IPv6 request-share percentages per country."""

    def __init__(self, records: Iterable[tuple[str, Month, float]] = ()):
        self._values: dict[tuple[str, Month], float] = {}
        for cc, month, pct in records:
            self.add(cc, month, pct)

    def add(self, country: str, month: Month, pct: float) -> None:
        """Insert or replace one observation (percent, 0-100)."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"adoption percent out of range: {pct}")
        self._values[(country.upper(), month)] = float(pct)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, country: str, month: Month) -> float | None:
        """One observation, or None."""
        return self._values.get((country.upper(), month))

    def series(self, country: str) -> MonthlySeries:
        """All observations of one country."""
        cc = country.upper()
        return MonthlySeries(
            {m: pct for (c, m), pct in self._values.items() if c == cc}
        )

    def panel(self) -> CountryPanel:
        """Every country as a CountryPanel."""
        return CountryPanel.from_records(
            (cc, month, pct) for (cc, month), pct in self._values.items()
        )

    def countries(self) -> list[str]:
        """All countries with observations, sorted."""
        return sorted({cc for cc, _m in self._values})

    # -- CSV round-trip --------------------------------------------------------

    def to_csv(self) -> str:
        """Serialise in the flattened-dashboard layout."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["country", "month", "ipv6_pct"])
        for (cc, month) in sorted(self._values, key=lambda k: (k[0], k[1])):
            writer.writerow([cc, str(month), repr(self._values[(cc, month)])])
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "AdoptionDataset":
        """Parse the layout produced by :meth:`to_csv`."""
        dataset = cls()
        for row in csv.DictReader(io.StringIO(text)):
            dataset.add(row["country"], Month.parse(row["month"]), float(row["ipv6_pct"]))
        return dataset

    def save(self, path: Path | str) -> None:
        """Write the CSV form to *path*."""
        Path(path).write_text(self.to_csv(), encoding="utf-8")

    @classmethod
    def load(cls, path: Path | str) -> "AdoptionDataset":
        """Read the CSV form from *path*."""
        return cls.from_csv(Path(path).read_text(encoding="utf-8"))
