"""IPv6 adoption dataset (Meta/Facebook per-country substitute).

The paper reads Meta's public per-country IPv6 request shares to produce
Fig. 5.  :mod:`repro.ipv6.model` holds the dataset with a CSV round-trip;
:mod:`repro.ipv6.synthetic` generates logistic adoption curves calibrated
to the paper (Mexico/Brazil past 40%, Argentina/Chile/Colombia near 20%
with Chile's 2022 surge, Venezuela near zero until 2021 and only 1.5% by
mid-2023).
"""

from repro.ipv6.model import AdoptionDataset
from repro.ipv6.synthetic import synthesize_ipv6_adoption

__all__ = ["AdoptionDataset", "synthesize_ipv6_adoption"]
