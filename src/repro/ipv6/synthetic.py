"""Synthetic IPv6 adoption curves calibrated to Fig. 5.

Each country follows a logistic uptake curve parameterised by its ceiling,
inflection month and steepness; Venezuela instead follows the paper's
scripted trajectory (near zero until 2021, creeping to 1.5% by mid-2023
and holding).  The window matches the figure (January 2018 to July 2023).
"""

from __future__ import annotations

import math

from repro.ipv6.model import AdoptionDataset
from repro.timeseries.month import Month, month_range

WINDOW_START = Month(2018, 1)
WINDOW_END = Month(2023, 7)

#: cc -> (ceiling percent, inflection month, steepness per month).
#: Chile's late inflection with high steepness is its 2022 surge.
_LOGISTIC_PARAMS: dict[str, tuple[float, Month, float]] = {
    "MX": (45.0, Month(2019, 6), 0.09),
    "BR": (43.0, Month(2019, 10), 0.08),
    "UY": (32.0, Month(2020, 6), 0.09),
    "EC": (29.0, Month(2021, 1), 0.10),
    "PE": (26.0, Month(2020, 9), 0.09),
    "GT": (26.0, Month(2021, 3), 0.10),
    "CR": (25.0, Month(2021, 1), 0.09),
    "CL": (24.0, Month(2022, 3), 0.22),
    "BO": (23.0, Month(2021, 6), 0.10),
    "CO": (21.0, Month(2020, 12), 0.09),
    "TT": (21.0, Month(2021, 2), 0.09),
    "DO": (20.0, Month(2021, 4), 0.09),
    "AR": (20.0, Month(2020, 6), 0.08),
    "PY": (18.0, Month(2021, 8), 0.10),
    "SV": (16.0, Month(2021, 9), 0.10),
    "PA": (15.0, Month(2021, 6), 0.09),
    "HN": (12.0, Month(2021, 10), 0.10),
    "NI": (8.0, Month(2022, 1), 0.10),
    "HT": (3.0, Month(2022, 3), 0.10),
    "CU": (2.0, Month(2022, 6), 0.10),
}

#: Venezuela's scripted trajectory: (month, percent) anchors, linearly
#: interpolated; flat at 0.02% before the first anchor.
_VE_ANCHORS: tuple[tuple[Month, float], ...] = (
    (Month(2021, 1), 0.02),
    (Month(2021, 7), 0.15),
    (Month(2022, 1), 0.40),
    (Month(2022, 7), 0.80),
    (Month(2023, 1), 1.20),
    (Month(2023, 7), 1.50),
)


def _logistic(month: Month, ceiling: float, inflection: Month, steepness: float) -> float:
    elapsed = inflection.months_until(month)
    return ceiling / (1.0 + math.exp(-steepness * elapsed))


def _ve_value(month: Month) -> float:
    if month <= _VE_ANCHORS[0][0]:
        return _VE_ANCHORS[0][1]
    for (m0, v0), (m1, v1) in zip(_VE_ANCHORS, _VE_ANCHORS[1:]):
        if m0 <= month <= m1:
            frac = m0.months_until(month) / m0.months_until(m1)
            return v0 + frac * (v1 - v0)
    return _VE_ANCHORS[-1][1]


def synthesize_ipv6_adoption(
    start: Month = WINDOW_START, end: Month = WINDOW_END
) -> AdoptionDataset:
    """Build the calibrated regional adoption dataset."""
    dataset = AdoptionDataset()
    for month in month_range(start, end):
        for cc, (ceiling, inflection, steepness) in _LOGISTIC_PARAMS.items():
            dataset.add(cc, month, round(_logistic(month, ceiling, inflection, steepness), 3))
        dataset.add("VE", month, round(_ve_value(month), 3))
    return dataset
