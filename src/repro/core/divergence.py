"""Divergence dashboard: when and how far Venezuela left the pack.

Every signal in the paper tells the same story -- Venezuela tracking the
region, then splitting off.  This module standardises that story: z-score
and percentile trajectories of one country against the rest of the panel,
and an algorithmic divergence onset (changepoint of the z-score series),
so the "around 2013" dating can be read off each signal independently.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.scenario import Scenario
from repro.timeseries.month import Month
from repro.timeseries.panel import CountryPanel
from repro.timeseries.series import MonthlySeries
from repro.timeseries.trend import detect_changepoint


def zscore_series(panel: CountryPanel, country: str) -> MonthlySeries:
    """Per-month z-score of *country* against the other countries.

    Months with fewer than three other observations, or with zero spread,
    are skipped.
    """
    cc = country.upper()
    target = panel[cc]
    others = panel.filter_countries(lambda code: code != cc)
    values: dict[Month, float] = {}
    for month, value in target.items():
        sample = [
            s[month] for _c, s in others.items() if month in s
        ]
        if len(sample) < 3:
            continue
        spread = statistics.pstdev(sample)
        if spread == 0:
            continue
        values[month] = (value - statistics.fmean(sample)) / spread
    return MonthlySeries(values)


def percentile_series(panel: CountryPanel, country: str) -> MonthlySeries:
    """Per-month percentile of *country* (1.0 = top of the region)."""
    cc = country.upper()
    target = panel[cc]
    values: dict[Month, float] = {}
    for month, value in target.items():
        sample = [
            s[month]
            for code, s in panel.items()
            if code != cc and month in s
        ]
        if not sample:
            continue
        below = sum(1 for v in sample if v < value)
        values[month] = below / len(sample)
    return MonthlySeries(values)


@dataclass(frozen=True, slots=True)
class DivergenceSummary:
    """One signal's divergence story for one country."""

    signal: str
    onset: Month | None
    z_before: float
    z_after: float
    latest_percentile: float


def divergence_summary(
    panel: CountryPanel, country: str, signal: str, min_segment: int = 12
) -> DivergenceSummary:
    """Summarise one signal: onset month and before/after z-levels."""
    z = zscore_series(panel, country)
    pct = percentile_series(panel, country)
    latest_pct = pct.last_value() if pct else 0.0
    if len(z) < 2 * min_segment:
        mean_z = z.mean() if z else 0.0
        return DivergenceSummary(signal, None, mean_z, mean_z, latest_pct)
    change = detect_changepoint(z, min_segment=min_segment)
    before = z.clip_range(z.first_month(), change.month.plus(-1))
    after = z.clip_range(change.month, z.last_month())
    return DivergenceSummary(
        signal=signal,
        onset=change.month,
        z_before=before.mean(),
        z_after=after.mean(),
        latest_percentile=latest_pct,
    )


def crisis_dashboard(scenario: Scenario, country: str = "VE") -> list[DivergenceSummary]:
    """The divergence story across the paper's longitudinal signals."""
    from repro.mlab.aggregate import median_download_panel
    from repro.core.exhibits.performance import gpdns_country_medians

    signals: list[tuple[str, CountryPanel, bool]] = [
        ("download speed", median_download_panel(scenario.ndt_tests), False),
        ("IPv6 adoption", scenario.ipv6.panel(), False),
        ("peering facilities", scenario.peeringdb.facility_count_panel(), False),
        ("GPDNS RTT", gpdns_country_medians(scenario), True),
    ]
    summaries = []
    for name, panel, invert in signals:
        if country.upper() not in panel:
            continue
        working = panel.map_series(lambda s: s.scale(-1.0)) if invert else panel
        summaries.append(divergence_summary(working, country, name))
    return summaries
