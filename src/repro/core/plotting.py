"""Terminal plotting: ASCII sparklines and three-panel figure rendering.

No plotting dependency is assumed; the renderer produces compact text
charts good enough to eyeball every trajectory the paper plots.
"""

from __future__ import annotations

from repro.core.figures import ThreePanelFigure
from repro.timeseries.series import MonthlySeries

_TICKS = " .:-=+*#%@"


def sparkline(series: MonthlySeries, width: int = 60) -> str:
    """A one-line amplitude chart of a series.

    Values are resampled to *width* columns (by bucketing months) and
    mapped onto a ten-level character ramp scaled to the series range.
    """
    if not series:
        return "(empty)"
    months = series.months()
    values = series.values()
    low, high = min(values), max(values)
    span = high - low
    buckets: list[list[float]] = [[] for _ in range(min(width, len(months)))]
    for index, value in enumerate(values):
        buckets[index * len(buckets) // len(values)].append(value)
    chars = []
    for bucket in buckets:
        if not bucket:
            chars.append(" ")
            continue
        mean = sum(bucket) / len(bucket)
        level = 0 if span == 0 else round((mean - low) / span * (len(_TICKS) - 1))
        chars.append(_TICKS[level])
    return "".join(chars)


def render_series(name: str, series: MonthlySeries, width: int = 60) -> str:
    """One labelled sparkline with its range annotation."""
    if not series:
        return f"{name:<6} (no data)"
    return (
        f"{name:<6} {sparkline(series, width)}  "
        f"[{series.min():.2f} .. {series.max():.2f}]"
    )


def render_three_panel(figure: ThreePanelFigure, width: int = 60) -> str:
    """Render a three-panel figure as text.

    Highlighted countries get one sparkline each; the Venezuela zoom and
    the regional aggregate follow, mirroring the paper's layout.
    """
    lines = [f"{figure.figure_id.upper()}: {figure.title} ({figure.unit})"]
    months = figure.panel.months()
    if months:
        lines.append(f"window: {months[0]} .. {months[-1]}")
    for cc in figure.highlight:
        series = figure.panel.get(cc)
        if series:
            lines.append(render_series(cc, series, width))
    lines.append(render_series("VE*", figure.zoom, width))
    lines.append(
        render_series(f"{figure.aggregate_mode.value}", figure.aggregate, width)
    )
    lines.append("(* = the paper's lower-left Venezuela zoom)")
    return "\n".join(lines)
