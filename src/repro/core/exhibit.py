"""Exhibit result type and registry.

Every paper figure/table maps to one function ``Scenario -> Exhibit``.
An Exhibit is a small row-oriented table: rows are plain dicts so the
renderer, tests and benchmark harness all consume the same shape.  Rows
carry ``paper`` columns next to ``measured`` ones wherever the paper
states a number, which is what EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.scenario import Scenario


@dataclass
class Exhibit:
    """One reproduced figure or table."""

    exhibit_id: str
    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def columns(self) -> list[str]:
        """Union of row keys, in first-appearance order."""
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def column(self, name: str) -> list[object]:
        """All values of one column (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        """Aligned text table, ready for the terminal."""
        cols = self.columns()
        header = [self.exhibit_id.upper() + ": " + self.title]
        if not self.rows:
            return "\n".join(header + ["(no rows)"])

        def fmt(value: object) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        table = [[fmt(row.get(c)) for c in cols] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in table)) for i, c in enumerate(cols)
        ]
        lines = header
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in table)
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


ExhibitFn = Callable[["Scenario"], Exhibit]

_REGISTRY: dict[str, ExhibitFn] = {}


def register(exhibit_id: str) -> Callable[[ExhibitFn], ExhibitFn]:
    """Decorator registering an exhibit function under its id."""

    def wrap(fn: ExhibitFn) -> ExhibitFn:
        if exhibit_id in _REGISTRY:
            raise ValueError(f"duplicate exhibit id {exhibit_id!r}")
        _REGISTRY[exhibit_id] = fn
        return fn

    return wrap


def get_exhibit(exhibit_id: str) -> ExhibitFn:
    """The registered function for *exhibit_id*.

    Importing :mod:`repro.core.exhibits` populates the registry.
    """
    import repro.core.exhibits  # noqa: F401  (registration side effect)

    try:
        return _REGISTRY[exhibit_id]
    except KeyError:
        raise KeyError(
            f"unknown exhibit {exhibit_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def exhibit_ids() -> list[str]:
    """All registered exhibit ids, sorted."""
    import repro.core.exhibits  # noqa: F401

    return sorted(_REGISTRY)


def exhibit_title(exhibit_id: str) -> str:
    """The one-line title of an exhibit, without running it.

    Exhibit functions document themselves; the first docstring line is
    the listing title (running the function to read ``Exhibit.title``
    would cost a scenario build).
    """
    doc = (get_exhibit(exhibit_id).__doc__ or "").strip().splitlines()
    return doc[0] if doc else ""


def exhibit_catalog() -> list[dict[str, str]]:
    """Every exhibit as ``{"id", "title"}``, in id order.

    The one listing representation shared by ``repro list`` (text and
    ``--json``) and the HTTP server's ``/v1/exhibits`` endpoint.
    """
    return [
        {"id": exhibit_id, "title": exhibit_title(exhibit_id)}
        for exhibit_id in exhibit_ids()
    ]
