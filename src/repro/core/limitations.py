"""The paper's Section 8 (Limitations), computed.

Each limitation the paper discusses qualitatively becomes a measurable
coverage statistic on the scenario's own data: platform coverage of
Venezuela (RIPE Atlas), crowd-sourced test volume skew (M-Lab), and the
breadth of PeeringDB registration.  A downstream user swapping in real
archives gets the same report about *their* data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scenario import Scenario
from repro.timeseries.month import Month


@dataclass(frozen=True, slots=True)
class CoverageStat:
    """One coverage/limitation statistic."""

    name: str
    value: float
    comment: str


def atlas_coverage(scenario: Scenario, month: Month | None = None) -> list[CoverageStat]:
    """RIPE Atlas coverage of Venezuela relative to the region."""
    months = [Month(2024, 1)] if month is None else [month]
    panel = scenario.probes.count_panel(months)
    target = months[0]
    ve = panel["VE"][target]
    rank = panel.rank_in_month("VE", target)
    total = panel.regional_sum()[target]
    return [
        CoverageStat("ve_probes", ve, "active Venezuelan probes"),
        CoverageStat(
            "ve_probe_rank", float(rank),
            "Venezuela's probe-count rank in the region (1 = best covered)",
        ),
        CoverageStat(
            "ve_probe_share", ve / total,
            "share of the regional probe fleet in Venezuela",
        ),
    ]


def mlab_volume_skew(scenario: Scenario) -> list[CoverageStat]:
    """Crowd-sourced test-volume skew across countries.

    The paper warns that "the number of tests per country ... may vary";
    this reports the max/min monthly-volume ratio and Venezuela's share.
    """
    from repro.mlab.aggregate import measurement_count_panel

    counts = measurement_count_panel(scenario.ndt_tests)
    latest = counts.months()[-1]
    per_country = {
        cc: counts[cc].get(latest, 0.0) for cc in counts.countries()
    }
    values = [v for v in per_country.values() if v > 0]
    total = sum(values)
    return [
        CoverageStat(
            "volume_max_min_ratio", max(values) / min(values),
            "largest / smallest per-country monthly test volume",
        ),
        CoverageStat(
            "ve_volume_share", per_country.get("VE", 0.0) / total,
            "Venezuela's share of the latest month's tests",
        ),
    ]


def peeringdb_breadth(scenario: Scenario) -> list[CoverageStat]:
    """Breadth of PeeringDB registration the analyses can see."""
    snapshot = scenario.peeringdb.latest()
    countries = len(snapshot.facility_count_by_country())
    ve_members = {
        nf.net_id
        for f in snapshot.facilities_in("VE")
        for nf in snapshot.netfacs
        if nf.fac_id == f.id
    }
    return [
        CoverageStat(
            "facility_countries", float(countries),
            "countries with at least one registered facility",
        ),
        CoverageStat(
            "ve_networks_at_facilities", float(len(ve_members)),
            "distinct Venezuelan networks registered at any facility",
        ),
    ]


def limitations_report(scenario: Scenario) -> list[CoverageStat]:
    """Every limitation statistic, in the paper's Section 8 order."""
    return (
        atlas_coverage(scenario)
        + mlab_volume_skew(scenario)
        + peeringdb_breadth(scenario)
    )


def render_limitations(scenario: Scenario) -> str:
    """The limitations report as aligned text."""
    stats = limitations_report(scenario)
    width = max(len(s.name) for s in stats)
    return "\n".join(
        f"{s.name:<{width}}  {s.value:>10.3f}  {s.comment}" for s in stats
    )
