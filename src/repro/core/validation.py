"""Cross-dataset consistency validation.

A scenario combines a dozen datasets that must agree with each other
(announced prefixes must be allocated, facility members must be
registered networks, CHAOS answers must parse, ...).  The validator
checks those invariants and reports violations -- its real purpose is
guarding imports of *real* archive data, where such inconsistencies are
routine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scenario import Scenario


@dataclass(frozen=True, slots=True)
class Issue:
    """One detected inconsistency."""

    check: str
    severity: str  # "error" | "warning"
    detail: str


def _announced_within_allocations(scenario: Scenario) -> list[Issue]:
    """Every Venezuelan-origin announcement sits inside an allocation."""
    import ipaddress

    issues: list[Issue] = []
    allocated = []
    for record in scenario.delegations.ipv4_records("VE"):
        size = record.value
        prefixlen = 32 - (size - 1).bit_length() if size > 1 else 32
        allocated.append(ipaddress.ip_network(f"{record.start}/{prefixlen}"))
    ve_asns = {e.asn for e in scenario.populations.country_entries("VE")}
    final = scenario.prefix2as[scenario.prefix2as.months()[-1]]
    for entry in final.entries:
        if not any(origin in ve_asns for origin in entry.origins):
            continue
        if not any(entry.network.subnet_of(block) for block in allocated):
            issues.append(
                Issue(
                    "announced_within_allocations",
                    "error",
                    f"{entry.network} (origin {entry.origins}) outside VE allocations",
                )
            )
    return issues


def _facility_members_registered(scenario: Scenario) -> list[Issue]:
    """Every netfac row points at existing facility and network rows."""
    issues: list[Issue] = []
    snapshot = scenario.peeringdb.latest()
    net_ids = {n.id for n in snapshot.networks}
    fac_ids = {f.id for f in snapshot.facilities}
    for netfac in snapshot.netfacs:
        if netfac.net_id not in net_ids:
            issues.append(
                Issue("facility_members_registered", "error",
                      f"netfac references unknown network {netfac.net_id}")
            )
        if netfac.fac_id not in fac_ids:
            issues.append(
                Issue("facility_members_registered", "error",
                      f"netfac references unknown facility {netfac.fac_id}")
            )
    return issues


def _exchange_ports_registered(scenario: Scenario) -> list[Issue]:
    """Every netixlan row points at existing exchange and network rows."""
    issues: list[Issue] = []
    snapshot = scenario.peeringdb.latest()
    net_ids = {n.id for n in snapshot.networks}
    ix_ids = {x.id for x in snapshot.exchanges}
    for port in snapshot.netixlans:
        if port.net_id not in net_ids:
            issues.append(
                Issue("exchange_ports_registered", "error",
                      f"netixlan references unknown network {port.net_id}")
            )
        if port.ix_id not in ix_ids:
            issues.append(
                Issue("exchange_ports_registered", "error",
                      f"netixlan references unknown exchange {port.ix_id}")
            )
    return issues


def _chaos_answers_parse(scenario: Scenario, sample: int = 5000) -> list[Issue]:
    """CHAOS answers must match their letter's grammar."""
    from repro.rootdns.naming import ChaosParseError, parse_chaos_string

    issues: list[Issue] = []
    failures = 0
    observations = scenario.chaos_observations
    step = max(1, len(observations) // sample)
    for obs in observations[::step]:
        try:
            parse_chaos_string(obs.letter, obs.answer)
        except ChaosParseError:
            failures += 1
    if failures:
        issues.append(
            Issue("chaos_answers_parse", "warning",
                  f"{failures} sampled CHAOS answers failed their grammar")
        )
    return issues


def _offnet_asns_have_population(scenario: Scenario) -> list[Issue]:
    """Off-net host ASes should appear in the population estimates."""
    known = {e.asn for e in scenario.populations}
    unknown = set()
    for record in scenario.offnets:
        if record.asn not in known:
            unknown.add(record.asn)
    if unknown:
        return [
            Issue("offnet_asns_have_population", "warning",
                  f"{len(unknown)} off-net ASes lack population data")
        ]
    return []


def _probe_months_within_campaigns(scenario: Scenario) -> list[Issue]:
    """Traceroutes must come from probes active in their month."""
    issues: list[Issue] = []
    probes = {p.probe_id: p for p in scenario.probes.probes}
    bad = 0
    for result in scenario.gpdns_traceroutes[:: max(1, len(scenario.gpdns_traceroutes) // 5000)]:
        probe = probes.get(result.probe_id)
        if probe is None or not probe.active_in(result.month):
            bad += 1
    if bad:
        issues.append(
            Issue("probe_months_within_campaigns", "error",
                  f"{bad} sampled traceroutes from inactive/unknown probes")
        )
    return issues


def _population_totals_positive(scenario: Scenario) -> list[Issue]:
    """Every surveyed country needs a positive user total."""
    issues = []
    for cc in scenario.populations.countries():
        if scenario.populations.country_users(cc) <= 0:
            issues.append(
                Issue("population_totals_positive", "error",
                      f"{cc} has a non-positive user total")
            )
    return issues


#: All checks in execution order.
_CHECKS = (
    _announced_within_allocations,
    _facility_members_registered,
    _exchange_ports_registered,
    _chaos_answers_parse,
    _offnet_asns_have_population,
    _probe_months_within_campaigns,
    _population_totals_positive,
)


def validate_scenario(scenario: Scenario) -> list[Issue]:
    """Run every consistency check; an empty list means all-clear."""
    issues: list[Issue] = []
    for check in _CHECKS:
        issues.extend(check(scenario))
    return issues
