"""The paper pipeline: scenario, exhibits, report rendering.

* :mod:`repro.core.scenario` -- one deterministic synthetic world holding
  every dataset the paper consumes; all exhibits read from it.
* :mod:`repro.core.exhibit` -- the exhibit result type and registry.
* :mod:`repro.core.exhibits` -- one analysis function per paper figure
  and table (fig01..fig21, table1, table2).
* :mod:`repro.core.report` -- text rendering and the run-everything entry
  point.
"""

from repro.core.degrade import DatasetDegradedError, DegradedDataset
from repro.core.exhibit import Exhibit, exhibit_ids, get_exhibit
from repro.core.report import run_all, run_exhibit
from repro.core.scenario import Scenario

__all__ = [
    "DatasetDegradedError",
    "DegradedDataset",
    "Exhibit",
    "Scenario",
    "exhibit_ids",
    "get_exhibit",
    "run_all",
    "run_exhibit",
]
