"""Regional scorecard: one country's latest standing across five signals.

The paper's methodology is country-vs-region throughout, so any LACNIC
economy can be scored on the same five panels Venezuela is measured by:
peering facilities, submarine cables, IPv6 adoption, root DNS replicas,
and download speed.  This module computes that scorecard once;
``repro scorecard`` renders it as text and ``repro serve`` returns it as
JSON, so the two surfaces can never drift apart.

Small economies are legitimately absent from some panels (no peering
facility has ever been listed in Barbados); a missing panel is reported
as an explicit ``none`` row and the scorecard carries an availability
count so callers can tell "no data" from "rank not computed".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.degrade import DatasetDegradedError
from repro.core.scenario import Scenario
from repro.geo.countries import UnknownCountryError, country  # noqa: F401  (re-export)


class NonLacnicCountryError(ValueError):
    """Raised for a real country outside the LACNIC service region."""


def check_country(code: str):
    """Validate a scorecard country code without building anything.

    Returns the :class:`~repro.geo.countries.Country` for *code*
    (case-insensitive).  Callers validate first so a typo is rejected
    before any scenario build is paid for.

    Raises:
        UnknownCountryError: *code* is not in the country registry.
        NonLacnicCountryError: the country is outside the LACNIC region.
    """
    home = country(code.upper())
    if not home.lacnic:
        raise NonLacnicCountryError(f"{home.name} is outside the LACNIC region")
    return home


@dataclass(frozen=True, slots=True)
class ScorecardRow:
    """One panel's latest value and regional rank (or an explicit gap).

    Attributes:
        panel: Human-readable panel name (e.g. ``"peering facilities"``).
        month: Month of the latest observation (``str``), or None.
        value: Latest observed value, or None when the panel has no data
            for the country.
        rank: Regional rank of that value in its month, or None.
        total: Number of economies the panel covers (rank denominator).
        degraded: Reason the panel's dataset was unavailable, or None.
            Distinguishes "this country has no data" (legitimate gap)
            from "the dataset behind the panel degraded" (see
            ``docs/RELIABILITY.md``).
    """

    panel: str
    month: str | None
    value: float | None
    rank: int | None
    total: int
    degraded: str | None = None

    @property
    def available(self) -> bool:
        return self.value is not None

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "panel": self.panel,
            "month": self.month,
            "value": self.value,
            "rank": self.rank,
            "total": self.total,
        }
        # Additive only: healthy scorecards keep their historical shape.
        if self.degraded is not None:
            out["degraded"] = self.degraded
        return out


@dataclass(frozen=True, slots=True)
class Scorecard:
    """A country's scorecard across every panel."""

    code: str
    name: str
    rows: list[ScorecardRow]

    @property
    def available(self) -> int:
        """How many panels actually have data for this country."""
        return sum(1 for row in self.rows if row.available)

    @property
    def degraded_panels(self) -> int:
        """How many panels were unavailable due to dataset degradation."""
        return sum(1 for row in self.rows if row.degraded is not None)

    def render(self) -> str:
        """The CLI text: header, one line per panel, coverage trailer."""
        lines = [f"{self.name} ({self.code}) — latest snapshot"]
        for row in self.rows:
            if row.degraded is not None:
                lines.append(f"  {row.panel:<24} unavailable ({row.degraded})")
                continue
            if not row.available:
                lines.append(f"  {row.panel:<24} none")
                continue
            lines.append(
                f"  {row.panel:<24} {row.value:>9.2f}   "
                f"rank {row.rank}/{row.total}"
            )
        trailer = f"  {self.available}/{len(self.rows)} panels available"
        if self.degraded_panels:
            trailer += f" ({self.degraded_panels} degraded)"
        lines.append(trailer)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON shape served by ``/v1/scorecard/<cc>``."""
        out: dict[str, object] = {
            "country": self.code,
            "name": self.name,
            "rows": [row.to_dict() for row in self.rows],
            "available": self.available,
            "panels": len(self.rows),
        }
        if self.degraded_panels:
            out["degraded"] = self.degraded_panels
        return out


def build_scorecard(scenario: Scenario, code: str) -> Scorecard:
    """Compute the scorecard for one LACNIC country.

    Args:
        scenario: The world to measure against.
        code: ISO 3166-1 alpha-2 code, any case.

    Raises:
        UnknownCountryError: *code* is not in the country registry.
        NonLacnicCountryError: the country is outside the LACNIC region.
    """
    from repro.mlab.aggregate import median_download_panel
    from repro.rootdns.analysis import replica_count_panel

    code = code.upper()
    home = check_country(code)  # raises UnknownCountryError / NonLacnicCountryError

    # Thunks, not values: each panel touches its dataset only when its
    # row is computed, so one degraded dataset costs one panel, not all.
    panels = [
        ("peering facilities", lambda: scenario.peeringdb.facility_count_panel()),
        ("submarine cables", lambda: scenario.cables.count_panel(2000, 2024)),
        ("IPv6 adoption (%)", lambda: scenario.ipv6.panel()),
        (
            "root DNS replicas",
            lambda: replica_count_panel(scenario.chaos_observations),
        ),
        (
            "download speed (Mbps)",
            lambda: median_download_panel(scenario.ndt_tests),
        ),
    ]
    rows = []
    for name, thunk in panels:
        try:
            panel = thunk()
        except DatasetDegradedError as err:
            rows.append(
                ScorecardRow(
                    name, None, None, None, 0,
                    degraded=f"degraded: dataset {err.name!r}",
                )
            )
            continue
        series = panel.get(code)
        if series is None or not series:
            rows.append(ScorecardRow(name, None, None, None, len(panel)))
            continue
        month = series.last_month()
        rows.append(
            ScorecardRow(
                panel=name,
                month=str(month),
                value=float(series.last_value()),
                rank=panel.rank_in_month(code, month),
                total=len(panel),
            )
        )
    return Scorecard(code=code, name=home.name, rows=rows)
