"""Section 7 / Appendix J exhibits: Figs. 11, 12 and 20."""

from __future__ import annotations

import statistics

from repro.core.exhibit import Exhibit, register
from repro.core.scenario import Scenario
from repro.atlas.traceroute import min_rtt_per_probe_month
from repro.geo.venezuela import distance_to_colombian_border_km
from repro.mlab.aggregate import median_download_panel
from repro.timeseries.month import Month
from repro.timeseries.panel import CountryPanel
from repro.timeseries.series import MonthlySeries
from repro.timeseries.stats import half_year_value, stagnation_months


def _row(metric: str, paper: object, measured: object) -> dict[str, object]:
    return {"metric": metric, "paper": paper, "measured": measured}


@register("fig11")
def fig11_bandwidth(scenario: Scenario) -> Exhibit:
    """Fig. 11: median download speeds across the region."""
    panel = median_download_panel(scenario.ndt_tests)
    july_2023 = Month(2023, 7)
    ve = panel["VE"]
    norm = panel.normalised_against_regional_mean("VE")
    # A 3-month rolling median damps the sampling noise of the monthly
    # medians before measuring the length of the sub-1-Mbps era.
    ve_smooth = ve.rolling_mean(3)
    rows = [
        _row("VE months below 1 Mbps (longest run)", 120,
             float(stagnation_months(ve_smooth, 1.0))),
        _row("VE median July 2023 (Mbps)", 2.93, ve[july_2023]),
        _row("UY median July 2023 (Mbps)", 47.33, panel["UY"][july_2023]),
        _row("BR median July 2023 (Mbps)", 32.44, panel["BR"][july_2023]),
        _row("CL median July 2023 (Mbps)", 25.25, panel["CL"][july_2023]),
        _row("AR median July 2023 (Mbps)", 15.48, panel["AR"][july_2023]),
        _row("MX median July 2023 (Mbps)", 18.66, panel["MX"][july_2023]),
        _row("VE / regional mean, 2009", 0.89, norm[Month(2009, 6)]),
        _row("VE / regional mean, 2023", 0.17, norm[july_2023]),
        _row("VE recovers past 1 Mbps after 2021", "yes",
             "yes" if ve[Month(2022, 6)] > 1.0 else "no"),
    ]
    return Exhibit("fig11", "Median download speeds (M-Lab NDT)", rows)


def gpdns_country_medians(scenario: Scenario) -> CountryPanel:
    """Median per-probe monthly min-RTT to GPDNS, per country."""
    minima = min_rtt_per_probe_month(scenario.gpdns_traceroutes)
    probe_country = {p.probe_id: p.country for p in scenario.probes.probes}
    per_country: dict[tuple[str, Month], list[float]] = {}
    for (probe_id, month), rtt in minima.items():
        cc = probe_country[probe_id]
        per_country.setdefault((cc, month), []).append(rtt)
    return CountryPanel.from_records(
        (cc, month, statistics.median(rtts))
        for (cc, month), rtts in per_country.items()
    )


@register("fig12")
def fig12_gpdns_rtt(scenario: Scenario) -> Exhibit:
    """Fig. 12: median RTT to Google Public DNS."""
    panel = gpdns_country_medians(scenario)

    def half(cc: str, year: int, half_idx: int) -> float:
        return half_year_value(panel[cc], year, half_idx)

    paper_halves = {
        "AR": (12.27, 11.36),
        "CL": (11.25, 11.87),
        "CO": (48.48, 16.10),
        "BR": (18.12, 7.52),
        "MX": (30.21, 21.28),
        "VE": (45.71, 36.56),
    }
    rows = []
    for cc, (h2016, h2023) in paper_halves.items():
        rows.append(_row(f"{cc} median RTT 2016 H1 (ms)", h2016, half(cc, 2016, 1)))
        rows.append(_row(f"{cc} median RTT 2023 H2 (ms)", h2023, half(cc, 2023, 2)))
    lacnic_mean = statistics.fmean(
        half(cc, 2023, 2) for cc in panel.countries()
    )
    ve_2023 = half("VE", 2023, 2)
    rows.append(_row("LACNIC mean 2023 H2 (ms)", 17.74, lacnic_mean))
    rows.append(_row("VE / LACNIC ratio", 2.06, ve_2023 / lacnic_mean))
    rows.append(
        _row("VE / BR ratio", 4.86, ve_2023 / half("BR", 2023, 2))
    )
    return Exhibit("fig12", "Median RTT to Google Public DNS", rows)


#: The Fig. 20 latency bins (ms upper bounds; None = unbounded).
FIG20_BINS: tuple[tuple[str, float | None], ...] = (
    ("<10ms", 10.0),
    ("10-20ms", 20.0),
    ("20-40ms", 40.0),
    (">40ms", None),
)


def classify_bin(rtt: float) -> str:
    """Assign an RTT to its Fig. 20 map bin."""
    for label, bound in FIG20_BINS:
        if bound is None or rtt < bound:
            return label
    raise AssertionError("unreachable")


@register("fig20")
def fig20_probe_map(scenario: Scenario) -> Exhibit:
    """Fig. 20 (Appendix J): Venezuelan probes coloured by min RTT."""
    month = Month(2023, 12)
    minima = min_rtt_per_probe_month(scenario.gpdns_traceroutes)
    probes = {p.probe_id: p for p in scenario.probes.active(month, "VE")}
    bins: dict[str, int] = {label: 0 for label, _b in FIG20_BINS}
    fast_distances: list[float] = []
    slow_distances: list[float] = []
    for (probe_id, m), rtt in minima.items():
        if m != month or probe_id not in probes:
            continue
        bins[classify_bin(rtt)] += 1
        probe = probes[probe_id]
        distance = distance_to_colombian_border_km(probe.lat, probe.lon)
        if rtt < 10.0:
            fast_distances.append(distance)
        if rtt > 40.0:
            slow_distances.append(distance)
    rows = [
        _row("probes on the map", 30, float(len(probes))),
        _row("probes under 10 ms", None, bins["<10ms"]),
        _row("probes 10-20 ms", None, bins["10-20ms"]),
        _row("probes 20-40 ms", None, bins["20-40ms"]),
        _row("probes above 40 ms", None, bins[">40ms"]),
        _row("fast probes sit on the Colombian border (max km)", "<100",
             max(fast_distances) if fast_distances else 0.0),
        _row("slow probes sit far east (min km)", ">800",
             min(slow_distances) if slow_distances else 0.0),
        _row("minimum VE RTT (no domestic GPDNS)", ">5",
             min(rtt for (pid, m), rtt in minima.items()
                 if m == month and pid in probes)),
    ]
    return Exhibit("fig20", "Venezuelan probe map: min RTT to GPDNS", rows)
