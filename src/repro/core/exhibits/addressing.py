"""Section 4 / Appendix C exhibits: Fig. 2 and Fig. 14."""

from __future__ import annotations

from repro.core.exhibit import Exhibit, register
from repro.core.scenario import Scenario
from repro.registry.address_plan import AS_CANTV, AS_TELEFONICA
from repro.registry.address_space import allocation_series
from repro.timeseries.month import Month


def _row(metric: str, paper: object, measured: object) -> dict[str, object]:
    return {"metric": metric, "paper": paper, "measured": measured}


@register("fig02")
def fig02_address_space(scenario: Scenario) -> Exhibit:
    """Fig. 2: CANTV vs Telefonica announced address space."""
    archive = scenario.prefix2as
    months = archive.months()
    allocated = allocation_series(scenario.delegations, "VE", months[0], months[-1])
    cantv = archive.announced_series(AS_CANTV)
    telefonica = archive.announced_series(AS_TELEFONICA)

    cantv_share = {
        m: cantv[m] / allocated[m] for m in months if allocated.get(m)
    }
    gap_pts = [
        (cantv[m] - telefonica[m]) / allocated[m] * 100.0
        for m in months
        if allocated.get(m)
    ]
    before = telefonica[Month(2016, 5)]
    during = telefonica[Month(2017, 1)]
    after = telefonica[Month(2023, 7)]
    rows = [
        _row("CANTV peak share of VE space", 0.69, max(cantv_share.values())),
        _row(
            "CANTV mean share of VE space",
            0.43,
            sum(cantv_share.values()) / len(cantv_share),
        ),
        _row("closest CANTV-Telefonica gap (pp)", 11.0, min(gap_pts)),
        _row("CANTV announced addresses (final)", None, cantv.last_value()),
        _row("Telefonica announced before withdrawal", None, before),
        _row("Telefonica announced during contraction", None, during),
        _row("Telefonica contraction depth (fraction)", None, during / before),
        _row("Telefonica recovers pre-withdrawal size", "yes", "yes" if after == before else "no"),
    ]
    return Exhibit(
        "fig02",
        "Allocated and announced address space: CANTV vs Telefonica",
        rows,
        notes="shares are announced/allocated within Venezuela, per month",
    )


@register("fig14")
def fig14_telefonica_prefixes(scenario: Scenario) -> Exhibit:
    """Fig. 14 (Appendix C): Telefonica prefix visibility heatmap."""
    archive = scenario.prefix2as
    matrix = archive.visibility_matrix(AS_TELEFONICA)
    may_2016 = Month(2016, 5)
    jan_2017 = Month(2017, 1)
    jul_2023 = Month(2023, 7)

    def routed_at(month: Month) -> int:
        return sum(1 for months in matrix.values() if month in months)

    withdrawn = [
        prefix
        for prefix, months in matrix.items()
        if may_2016 in months and jan_2017 not in months
    ]
    aggregates_back = [
        prefix
        for prefix, months in matrix.items()
        if jul_2023 in months and may_2016 not in months
    ]
    rows = [
        _row("prefixes tracked in heatmap", None, len(matrix)),
        _row("routed prefixes 2016-05", None, routed_at(may_2016)),
        _row("routed prefixes 2017-01", None, routed_at(jan_2017)),
        _row("/17s withdrawn around June 2016", None, len(withdrawn)),
        _row(
            "withdrawal includes 179.23.0.0/17 and 179.23.128.0/17",
            "yes",
            "yes"
            if {"179.23.0.0/17", "179.23.128.0/17"} <= set(withdrawn)
            else "no",
        ),
        _row("blocks reappearing as aggregates in 2023", None, len(aggregates_back)),
        _row(
            "179.20.0.0/14 reappears in 2023",
            "yes",
            "yes" if "179.20.0.0/14" in aggregates_back else "no",
        ),
    ]
    return Exhibit(
        "fig14", "Telefonica de Venezuela prefix visibility, 2016-2024", rows
    )
