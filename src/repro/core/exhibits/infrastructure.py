"""Section 5 / Appendices D-F exhibits: Figs. 3-6, 15-17 and Table 2."""

from __future__ import annotations

from repro.core.exhibit import Exhibit, register
from repro.core.scenario import Scenario
from repro.peeringdb.synthetic import VE_MEMBER_NAMES
from repro.rootdns.analysis import (
    probe_count_panel,
    replica_count_panel,
    sites_seen_from_country,
)
from repro.timeseries.month import Month
from repro.timeseries.stats import growth_factor


def _row(metric: str, paper: object, measured: object) -> dict[str, object]:
    return {"metric": metric, "paper": paper, "measured": measured}


@register("fig03")
def fig03_peering_facilities(scenario: Scenario) -> Exhibit:
    """Fig. 3: growth of peering facilities in the LACNIC region."""
    panel = scenario.peeringdb.facility_count_panel()
    total = panel.regional_sum()
    start, end = Month(2018, 4), Month(2024, 1)

    def span(cc: str) -> tuple[float, float]:
        series = panel[cc]
        return series.get(start, 0.0), series.get(end, 0.0)

    br = span("BR")
    mx = span("MX")
    cl = span("CL")
    cr = span("CR")
    ve = panel["VE"]
    rows = [
        _row("LACNIC facilities 2018", 180, total[start]),
        _row("LACNIC facilities 2024", 552, total[end]),
        _row("Brazil 2018 -> 2024", "102 -> 311", f"{br[0]:.0f} -> {br[1]:.0f}"),
        _row("Mexico 2018 -> 2024", "11 -> 45", f"{mx[0]:.0f} -> {mx[1]:.0f}"),
        _row("Chile 2018 -> 2024", "18 -> 45", f"{cl[0]:.0f} -> {cl[1]:.0f}"),
        _row("Costa Rica 2018 -> 2024", "3 -> 8", f"{cr[0]:.0f} -> {cr[1]:.0f}"),
        _row("Venezuela facilities (final)", 4, ve[end]),
        _row("Venezuela first registration", "2021", str(ve.first_month().year)),
    ]
    return Exhibit("fig03", "Peering facilities in the LACNIC region", rows)


@register("fig04")
def fig04_submarine_cables(scenario: Scenario) -> Exhibit:
    """Fig. 4: expansion of submarine cable networks."""
    cables = scenario.cables
    ve_added = [
        c.name for c in cables.cables_touching("VE") if c.rfs_year > 2000
    ]
    rows = [
        _row("regional cables in 2000", 13, len(cables.regional_cables(2000))),
        _row("regional cables in 2024", 54, len(cables.regional_cables(2024))),
        _row("Brazil 2000 -> 2024", "5 -> 17",
             f"{cables.count_in_year('BR', 2000)} -> {cables.count_in_year('BR', 2024)}"),
        _row("Colombia 2000 -> 2024", "5 -> 13",
             f"{cables.count_in_year('CO', 2000)} -> {cables.count_in_year('CO', 2024)}"),
        _row("Chile 2000 -> 2024", "2 -> 9",
             f"{cables.count_in_year('CL', 2000)} -> {cables.count_in_year('CL', 2024)}"),
        _row("Argentina 2000 -> 2024", "3 -> 9",
             f"{cables.count_in_year('AR', 2000)} -> {cables.count_in_year('AR', 2024)}"),
        _row("Venezuela cables added after 2000", 1, len(ve_added)),
        _row("Venezuela's only addition", "ALBA", ",".join(ve_added)),
        _row("ALBA connects to Cuba", "yes",
             "yes" if cables.cable_by_name("ALBA-1").touches("CU") else "no"),
    ]
    return Exhibit("fig04", "Submarine cable networks reaching the region", rows)


@register("fig05")
def fig05_ipv6_adoption(scenario: Scenario) -> Exhibit:
    """Fig. 5: IPv6 request share seen by Meta."""
    panel = scenario.ipv6.panel()
    mean = panel.regional_mean()
    rows = [
        _row("regional mean early 2018 (%)", 5.0, mean[Month(2018, 1)]),
        _row("regional mean early 2021 (%)", 11.0, mean[Month(2021, 1)]),
        _row("regional mean 2023 (%)", 22.0, mean[Month(2023, 7)]),
        _row("Mexico latest (%)", 40.0, panel["MX"].last_value()),
        _row("Brazil latest (%)", 40.0, panel["BR"].last_value()),
        _row("Venezuela mid-2023 (%)", 1.5, panel["VE"][Month(2023, 7)]),
        _row("Venezuela 2020 (near zero, %)", 0.0, panel["VE"][Month(2020, 6)]),
    ]
    return Exhibit("fig05", "IPv6 adoption across the LACNIC region", rows)


@register("fig06")
def fig06_root_replicas(scenario: Scenario) -> Exhibit:
    """Fig. 6: root DNS replicas hosted per country."""
    panel = replica_count_panel(scenario.chaos_observations)
    total = panel.regional_sum()
    start, end = Month(2016, 1), Month(2024, 1)
    ve = panel.get("VE")
    rows = [
        _row("regional replicas 2016", 59, total[start]),
        _row("regional replicas 2024", 138, total[end]),
        _row("regional growth factor", 2.34, growth_factor(total)),
        _row("Mexico 2016 -> 2024", "4 -> 16",
             f"{panel['MX'][start]:.0f} -> {panel['MX'][end]:.0f}"),
        _row("Chile 2016 -> 2024", "5 -> 20",
             f"{panel['CL'][start]:.0f} -> {panel['CL'][end]:.0f}"),
        _row("Brazil 2016 -> 2024", "18 -> 41",
             f"{panel['BR'][start]:.0f} -> {panel['BR'][end]:.0f}"),
        _row("Argentina adds one (14 -> 15)", "14 -> 15",
             f"{panel['AR'][start]:.0f} -> {panel['AR'][end]:.0f}"),
        _row("Venezuela replicas 2016", 2, ve[start] if ve and start in ve else 0.0),
        _row("Venezuela replicas latest", 0, ve.get(end, 0.0) if ve else 0.0),
    ]
    return Exhibit("fig06", "Root DNS replicas hosted in the region", rows)


@register("fig15")
def fig15_ve_facility_members(scenario: Scenario) -> Exhibit:
    """Fig. 15 (Appendix D): networks at Venezuelan facilities."""
    archive = scenario.peeringdb
    cirion = archive.facility_membership_series("Cirion La Urbina")
    lumen = archive.facility_membership_series("Lumen La Urbina")
    dayco = archive.facility_membership_series("Daycohost - Caracas")
    giga = archive.facility_membership_series("GigaPOP Maracaibo")
    globenet = archive.facility_membership_series("Globenet Maiquetia")
    rows = [
        _row("Cirion La Urbina latest members", 11, cirion.last_value()),
        _row("Lumen La Urbina peak members", 7, lumen.max()),
        _row("Daycohost peak members", 3, dayco.max()),
        _row("Daycohost latest members", 2, dayco.last_value()),
        _row("GigaPOP Maracaibo members", 0, giga.max()),
        _row("Globenet Maiquetia latest members", 2, globenet.last_value()),
        _row("first facility registration", "2021-11", str(lumen.first_month())),
    ]
    return Exhibit("fig15", "Networks present at Venezuelan peering facilities", rows)


@register("table2")
def table2_facility_rosters(scenario: Scenario) -> Exhibit:
    """Table 2 (Appendix D): networks ever present per VE facility."""
    archive = scenario.peeringdb
    rows: list[dict[str, object]] = []
    for name in archive.facility_names_in("VE"):
        members = archive.facility_members_ever(name)
        for asn in sorted(members):
            rows.append(
                {
                    "facility": name,
                    "asn": asn,
                    "network": VE_MEMBER_NAMES.get(asn, members[asn]),
                }
            )
        if not members:
            rows.append({"facility": name, "asn": None, "network": "(none)"})
    return Exhibit(
        "table2",
        "Networks present at Venezuela's peering facilities",
        rows,
        notes="membership is 'ever present', matching the paper's table",
    )


@register("fig16")
def fig16_root_sources(scenario: Scenario) -> Exhibit:
    """Fig. 16 (Appendix E): where Venezuela's root DNS answers come from."""
    seen = sites_seen_from_country(scenario.chaos_observations, "VE")

    def hosts_at(month: Month) -> dict[str, int]:
        return {
            cc: count for (cc, m), count in seen.items() if m == month
        }

    early = hosts_at(Month(2017, 1))
    late = hosts_at(Month(2023, 6))
    top_late = max(late, key=lambda cc: late[cc])
    second_late = sorted(late, key=lambda cc: -late[cc])[1] if len(late) > 1 else "-"
    rows = [
        _row("VE serves itself in 2017 (F+L)", "yes", "yes" if early.get("VE") else "no"),
        _row("US is the main source in 2017", "yes",
             "yes" if max(early, key=lambda cc: early[cc]) == "US" else "no"),
        _row("European sources in 2017", "GB,DE,FR/NL/SE",
             ",".join(sorted(cc for cc in early if cc in {"GB", "DE", "FR", "NL", "SE"}))),
        _row("VE domestic source in 2023", "none", "none" if "VE" not in late else "present"),
        _row("main source in 2023", "US", top_late),
        _row("second source in 2023", "BR", second_late),
        _row("regional sources in 2023", "BR,CO,PA",
             ",".join(sorted(cc for cc in late if cc in {"BR", "CO", "PA"}))),
    ]
    return Exhibit("fig16", "Root DNS servers serving Venezuela, by country", rows)


@register("fig17")
def fig17_probe_coverage(scenario: Scenario) -> Exhibit:
    """Fig. 17 (Appendix F): RIPE Atlas probes per country."""
    panel = probe_count_panel(scenario.chaos_observations)
    total = panel.regional_sum()
    start, end = Month(2016, 1), Month(2024, 1)
    rows = [
        _row("VE probes 2016", 10, panel["VE"][start]),
        _row("VE probes latest", 30, panel["VE"][end]),
        _row("VE rank in region (latest)", 6, panel.rank_in_month("VE", end)),
        _row("regional probes 2016", 300, total[start]),
        _row("regional probes latest", 450, total[end]),
        _row(
            "probes hosted by CANTV",
            8,
            float(sum(1 for p in scenario.probes.active(end, "VE") if p.asn == 8048)),
        ),
    ]
    return Exhibit("fig17", "RIPE Atlas coverage of the LACNIC region", rows)
