"""Exhibit functions, one per paper figure/table.

Importing this package registers every exhibit with the registry in
:mod:`repro.core.exhibit`.  Exhibits return paper-vs-measured metric rows
(the same numbers the paper's prose and panels report), which are what
the tests assert on, the benchmarks print, and EXPERIMENTS.md records.
"""

from repro.core.exhibits import (  # noqa: F401  (registration side effects)
    addressing,
    content,
    infrastructure,
    interdomain,
    macro,
    performance,
)

__all__ = [
    "addressing",
    "content",
    "infrastructure",
    "interdomain",
    "macro",
    "performance",
]
