"""Section 6 / Appendix I exhibits: Figs. 8-10, 21 and Table 1."""

from __future__ import annotations

from repro.apnic.synthetic import VE_TOP10
from repro.bgp.synthetic import US_REGISTERED_PROVIDERS, provider_name
from repro.core.exhibit import Exhibit, register
from repro.core.scenario import Scenario
from repro.ixp.coverage import (
    country_us_presence,
    eyeball_coverage_pct,
    ixp_coverage_heatmap,
    largest_ixp_per_country,
    us_presence_heatmap,
)
from repro.registry.address_plan import AS_CANTV
from repro.timeseries.month import Month


def _row(metric: str, paper: object, measured: object) -> dict[str, object]:
    return {"metric": metric, "paper": paper, "measured": measured}


@register("fig08")
def fig08_cantv_degree(scenario: Scenario) -> Exhibit:
    """Fig. 8: CANTV's upstream and downstream counts over time."""
    archive = scenario.asrel
    ups = archive.upstream_count_series(AS_CANTV)
    downs = archive.downstream_count_series(AS_CANTV)
    rows = [
        _row("peak upstream providers", 11, ups.max()),
        _row("upstreams in January 2013", 11, ups[Month(2013, 1)]),
        _row("upstream trough (2020)", 3, ups[Month(2020, 6)]),
        _row("upstreams at end (rebound)", None, ups.last_value()),
        _row("downstreams in 2000", 0, downs[Month(2000, 6)]),
        _row("downstreams at end", 20, downs.last_value()),
    ]
    return Exhibit("fig08", "CANTV-AS8048 upstream/downstream connectivity", rows)


@register("fig09")
def fig09_transit_roster(scenario: Scenario) -> Exhibit:
    """Fig. 9: providers serving transit to CANTV for >12 months."""
    archive = scenario.asrel
    providers = archive.providers_serving(AS_CANTV, min_months=12)
    final = archive[archive.months()[-1]].upstreams_of(AS_CANTV)
    us_final = sorted(final & US_REGISTERED_PROVIDERS)

    def last_service(asn: int) -> Month:
        return archive.provider_intervals(AS_CANTV, asn)[-1][1]

    rows = [
        _row("providers in roster (>12 months)", 18, len(providers)),
        _row("US providers still serving at end", 1, len(us_final)),
        _row("the remaining US provider", "Columbus Networks (23520)",
             ", ".join(f"{provider_name(a)} ({a})" for a in us_final)),
        _row("Verizon-701 departs", "2013", str(last_service(701).year)),
        _row("Sprint-1239 departs", "2013", str(last_service(1239).year)),
        _row("AT&T-7018 departs", "2013", str(last_service(7018).year)),
        _row("GTT-3257 departs", "2017", str(last_service(3257).year)),
        _row("GTT-4436 departs", "2017", str(last_service(4436).year)),
        _row("Level3-3356 departs", "2018", str(last_service(3356).year)),
        _row("Level3-3549 departs", "2018", str(last_service(3549).year)),
        _row("Telecom Italia-6762 serves to the end", "yes",
             "yes" if 6762 in final else "no"),
        _row("Gold Data-28007 is a recent addition", "yes",
             "yes" if archive.provider_intervals(AS_CANTV, 28007)[0][0] >= Month(2021, 1)
             else "no"),
    ]
    return Exhibit("fig09", "CANTV's transit providers over time", rows)


@register("fig10")
def fig10_latam_ixps(scenario: Scenario) -> Exhibit:
    """Fig. 10: eyeball coverage of the largest IXP per country."""
    snapshot = scenario.peeringdb.latest()
    estimates = scenario.populations
    largest = largest_ixp_per_country(snapshot, estimates)
    heatmap = ixp_coverage_heatmap(snapshot, estimates)
    ve_cells = [key for key in heatmap if key[0] == "VE"]
    rows = [
        _row("AR-IX coverage of Argentina (%)", 62.4,
             eyeball_coverage_pct(snapshot, estimates, "AR-IX", "AR")),
        _row("IX.br coverage of Brazil (%)", 45.53,
             eyeball_coverage_pct(snapshot, estimates, "IX.br (SP)", "BR")),
        _row("PIT Chile coverage of Chile (%)", 49.57,
             eyeball_coverage_pct(snapshot, estimates, "PIT Chile (SCL)", "CL")),
        _row("VE rows in the largest-IXP heatmap", 0, len(ve_cells)),
        _row("VE coverage via Equinix Bogota (%)", 4.0,
             eyeball_coverage_pct(snapshot, estimates, "Equinix Bogota", "VE")),
        _row("countries with a largest IXP", None, len(largest)),
        _row("Venezuela hosts an IXP", "no", "no" if "VE" not in largest else "yes"),
        _row("Uruguay present abroad (AR-IX, %)", 78.96,
             eyeball_coverage_pct(snapshot, estimates, "AR-IX", "UY")),
    ]
    return Exhibit("fig10", "Eyeball coverage of Latin American IXPs", rows)


@register("fig21")
def fig21_us_ixps(scenario: Scenario) -> Exhibit:
    """Fig. 21 (Appendix I): Latin American networks at US exchanges."""
    snapshot = scenario.peeringdb.latest()
    estimates = scenario.populations
    ve_networks, ve_pct = country_us_presence(snapshot, estimates, "VE")
    uy_networks, uy_pct = country_us_presence(snapshot, estimates, "UY")
    heatmap = us_presence_heatmap(snapshot, estimates)
    br_exchanges = sorted({ix for (cc, ix) in heatmap if cc == "BR"})
    mx_exchanges = sorted({ix for (cc, ix) in heatmap if cc == "MX"})
    uy_exchanges = sorted({ix for (cc, ix) in heatmap if cc == "UY"})
    rows = [
        _row("VE networks at US IXPs", 7, ve_networks),
        _row("VE eyeballs via US IXPs (%)", 7.0, ve_pct),
        _row("UY distinct networks in the US", None, uy_networks),
        _row("UY eyeballs via US IXPs (%)", None, uy_pct),
        _row("UY concentrates at few exchanges", "<=4", len(uy_exchanges)),
        _row("BR present across many exchanges", ">=5", len(br_exchanges)),
        _row("MX present across many exchanges", ">=3", len(mx_exchanges)),
    ]
    return Exhibit("fig21", "Latin American networks at IXPs in the US", rows)


@register("table1")
def table1_ve_market(scenario: Scenario) -> Exhibit:
    """Table 1 (Appendix A): the ten largest Venezuelan ISPs."""
    estimates = scenario.populations
    rows: list[dict[str, object]] = []
    for paper_entry, measured in zip(VE_TOP10, estimates.top_networks("VE", 10)):
        paper_asn, paper_name, paper_users = paper_entry
        rows.append(
            {
                "asn": measured.asn,
                "name": measured.name,
                "users": measured.users,
                "share_pct": round(estimates.share_of(measured.asn, "VE") * 100, 2),
                "paper_asn": paper_asn,
                "paper_users": paper_users,
            }
        )
    top10_share = sum(
        estimates.share_of(e.asn, "VE") for e in estimates.top_networks("VE", 10)
    )
    rows.append(
        {
            "asn": None,
            "name": "top-10 total",
            "users": sum(e.users for e in estimates.top_networks("VE", 10)),
            "share_pct": round(top10_share * 100, 2),
            "paper_asn": None,
            "paper_users": 15_552_683,
        }
    )
    return Exhibit(
        "table1",
        "Ten largest Internet service providers in Venezuela",
        rows,
        notes="paper: CANTV 21.50%, top-10 77.18% of the market",
    )
