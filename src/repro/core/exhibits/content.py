"""Section 5.5 / Appendices G-H exhibits: Figs. 7, 18 and 19."""

from __future__ import annotations

from repro.core.exhibit import Exhibit, register
from repro.core.scenario import Scenario
from repro.offnets.analysis import country_rank, coverage_pct
from repro.offnets.records import HYPERGIANTS
from repro.webdeps.analysis import adoption_summary, country_order, regional_mean


def _row(metric: str, paper: object, measured: object) -> dict[str, object]:
    return {"metric": metric, "paper": paper, "measured": measured}


@register("fig07")
def fig07_offnets(scenario: Scenario) -> Exhibit:
    """Fig. 7: off-net coverage for Google, Akamai, Facebook, Netflix."""
    archive, estimates, orgmap = (
        scenario.offnets,
        scenario.populations,
        scenario.orgmap,
    )
    paper_ranks = {
        "google": (19, 27, 56.88),
        "akamai": (18, 22, 35.74),
        "facebook": (21, 25, 28.33),
        "netflix": (23, 25, 5.87),
    }
    rows = []
    for hg, (p_rank, p_pool, p_avg) in paper_ranks.items():
        rank, pool, avg = country_rank(archive, estimates, orgmap, hg, "VE")
        rows.append(_row(f"{hg}: VE rank", f"{p_rank}/{p_pool}", f"{rank}/{pool}"))
        rows.append(_row(f"{hg}: VE average coverage (%)", p_avg, avg))
    rows.append(
        _row(
            "google covered CANTV before the crisis (2013)",
            "yes",
            "yes" if 8048 in archive.hosting_asns("google", 2013) else "no",
        )
    )
    rows.append(
        _row(
            "facebook ever deployed in CANTV",
            "no",
            "yes"
            if any(8048 in archive.hosting_asns("facebook", y) for y in archive.years())
            else "no",
        )
    )
    netflix_cantv_years = [
        y for y in archive.years() if 8048 in archive.hosting_asns("netflix", y)
    ]
    rows.append(
        _row(
            "netflix enters CANTV",
            2021,
            netflix_cantv_years[0] if netflix_cantv_years else "never",
        )
    )
    return Exhibit("fig07", "Hypergiant off-net coverage (four majors)", rows)


@register("fig18")
def fig18_all_hypergiants(scenario: Scenario) -> Exhibit:
    """Fig. 18 (Appendix G): all ten hypergiants' off-net footprints."""
    archive, estimates, orgmap = (
        scenario.offnets,
        scenario.populations,
        scenario.orgmap,
    )
    minor = [hg for hg in HYPERGIANTS if hg not in ("google", "akamai", "facebook", "netflix")]
    rows = []
    final_year = archive.years()[-1]
    for hg in minor:
        ve_pct = coverage_pct(archive, estimates, orgmap, hg, "VE", final_year)
        countries = sorted(
            {
                cc
                for cc in estimates.countries()
                if coverage_pct(archive, estimates, orgmap, hg, cc, final_year) > 0
            }
        )
        rows.append(_row(f"{hg}: VE coverage (%)", 0.0, ve_pct))
        rows.append(
            _row(f"{hg}: LACNIC countries with presence", "minimal", len(countries))
        )
    return Exhibit(
        "fig18",
        "Off-net footprints of the remaining hypergiants",
        rows,
        notes="the paper: minimal LatAm presence, none in Venezuela",
    )


@register("fig19")
def fig19_third_party(scenario: Scenario) -> Exhibit:
    """Fig. 19 (Appendix H): third-party service adoption in top sites."""
    survey = scenario.site_survey
    ve = adoption_summary(survey, "VE")
    rows = [
        _row("VE third-party DNS adoption", 0.29, ve.dns),
        _row("regional DNS mean", 0.32, regional_mean(survey, "dns")),
        _row("VE third-party CA adoption", 0.22, ve.ca),
        _row("regional CA mean", 0.26, regional_mean(survey, "ca")),
        _row("VE third-party CDN adoption", 0.37, ve.cdn),
        _row("regional CDN mean", 0.46, regional_mean(survey, "cdn")),
        _row("VE HTTPS adoption", 0.58, ve.https),
        _row("regional HTTPS mean", 0.60, regional_mean(survey, "https")),
    ]
    for metric in ("dns", "ca"):
        order = country_order(survey, metric)
        rows.append(
            _row(
                f"only Bolivia below VE ({metric})",
                "yes",
                "yes" if order.index("VE") == 1 and order[0] == "BO" else "no",
            )
        )
    cdn_order = country_order(survey, "cdn")
    rows.append(
        _row(
            "VE third-lowest for CDN (after BO, PY)",
            "yes",
            "yes" if cdn_order[:3] == ["BO", "PY", "VE"] else "no",
        )
    )
    https_order = country_order(survey, "https")
    rows.append(
        _row(
            "VE slightly above bottom for HTTPS",
            "4th of 9",
            f"{https_order.index('VE') + 1}th of {len(https_order)}",
        )
    )
    return Exhibit("fig19", "Third-party provider adoption in popular sites", rows)
