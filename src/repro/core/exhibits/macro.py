"""Section 2 / Appendix B exhibits: Fig. 1 and Fig. 13."""

from __future__ import annotations

from repro.core.exhibit import Exhibit, register
from repro.core.scenario import Scenario
from repro.macro.store import Indicator, annual
from repro.timeseries.stats import peak_decline_pct


def _row(metric: str, paper: object, measured: object) -> dict[str, object]:
    return {"metric": metric, "paper": paper, "measured": measured}


@register("fig01")
def fig01_macro_collapse(scenario: Scenario) -> Exhibit:
    """Fig. 1: oil, GDP per capita, inflation and population collapse."""
    store = scenario.macro
    oil = store.series(Indicator.OIL_PRODUCTION, "VE")
    gdp = store.series(Indicator.GDP_PER_CAPITA, "VE")
    inflation = store.series(Indicator.INFLATION, "VE")
    population = store.series(Indicator.POPULATION, "VE")
    rows = [
        _row("oil production decline from peak (%)", 81.49, peak_decline_pct(oil)),
        _row(
            "oil production decline since 2013 (%)",
            77.0,
            peak_decline_pct(oil, since=annual(2013)),
        ),
        _row("GDP per capita decline from peak (%)", 70.90, peak_decline_pct(gdp)),
        _row("inflation peak (%)", 32_000.0, inflation.max()),
        _row("inflation peak year", 2019, inflation.argmax().year),
        _row("population decline from peak (%)", 13.85, peak_decline_pct(population)),
        _row(
            "population lost since peak (millions)",
            4.25,
            population.max() - population.last_value(),
        ),
    ]
    return Exhibit("fig01", "The domino effect of Venezuela's economic collapse", rows)


@register("fig13")
def fig13_gdp_rank_path(scenario: Scenario) -> Exhibit:
    """Fig. 13 (Appendix B): Venezuela's regional GDP-per-capita rank."""
    panel = scenario.macro.panel(Indicator.GDP_PER_CAPITA)
    paper_ranks = (3, 2, 8, 9, 7, 6, 6, 18, 23)
    rows = [
        _row(
            f"VE GDP pc rank in {year}",
            paper_rank,
            panel.rank_in_month("VE", annual(year)),
        )
        for year, paper_rank in zip(range(1980, 2021, 5), paper_ranks)
    ]
    rows.append(_row("economies in panel", None, len(panel)))
    return Exhibit(
        "fig13", "GDP per capita rank of Venezuela in the LACNIC region", rows
    )
