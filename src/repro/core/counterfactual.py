"""Recovery counterfactuals (extension of the paper's Section 10).

The paper closes by arguing that understanding the crisis's impact on the
network is "vital for charting a path to recovery".  This module makes
that quantitative in two directions:

* :func:`counterfactual_series` -- where a country's metric would be had
  it tracked the regional trend from a pivot month onward (the "no-crisis"
  path);
* :func:`years_to_catch_up` -- how long closing the gap to the regional
  mean takes under an assumed compound growth rate (the "recovery" path).
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.timeseries.month import Month
from repro.timeseries.panel import CountryPanel
from repro.timeseries.series import MonthlySeries


@dataclass(frozen=True, slots=True)
class CounterfactualGap:
    """Summary of an actual-vs-counterfactual comparison.

    Attributes:
        pivot: Month at which the paths diverge.
        final_actual: Actual value at the last common month.
        final_counterfactual: Counterfactual value at that month.
        shortfall_ratio: ``1 - actual/counterfactual`` (0.8 = the metric is
            80% below its no-crisis path).
    """

    pivot: Month
    final_actual: float
    final_counterfactual: float
    shortfall_ratio: float


def counterfactual_series(
    panel: CountryPanel, country: str, pivot: Month
) -> MonthlySeries:
    """The country's no-crisis path: pivot value scaled by regional growth.

    From *pivot* onward, the country's value is carried along the regional
    mean's month-over-month growth, computed over the other countries (the
    target is excluded so its own collapse cannot drag the baseline).

    Raises:
        KeyError: when the country lacks an observation at *pivot*.
    """
    cc = country.upper()
    actual = panel[cc]
    if pivot not in actual:
        raise KeyError(f"{cc} has no observation at {pivot}")
    others = panel.filter_countries(lambda code: code != cc)
    regional = others.regional_mean()
    if pivot not in regional:
        raise KeyError(f"regional mean has no observation at {pivot}")
    base_value = actual[pivot]
    base_regional = regional[pivot]
    out: dict[Month, float] = {pivot: base_value}
    for month in regional.months():
        if month > pivot:
            out[month] = base_value * regional[month] / base_regional
    return MonthlySeries(out)


def gap_summary(
    panel: CountryPanel, country: str, pivot: Month
) -> CounterfactualGap:
    """Summarise the actual-vs-counterfactual divergence for one country."""
    cc = country.upper()
    actual = panel[cc]
    counterfactual = counterfactual_series(panel, cc, pivot)
    last_common = max(set(actual.months()) & set(counterfactual.months()))
    final_actual = actual[last_common]
    final_cf = counterfactual[last_common]
    shortfall = 1.0 - final_actual / final_cf if final_cf > 0 else 0.0
    return CounterfactualGap(
        pivot=pivot,
        final_actual=final_actual,
        final_counterfactual=final_cf,
        shortfall_ratio=max(0.0, shortfall),
    )


def years_to_catch_up(
    current: float,
    target: float,
    growth_rate: float,
    target_growth_rate: float = 0.0,
) -> float:
    """Years until *current* reaches *target* under compound growth.

    Args:
        current: The country's current value (must be positive).
        target: The benchmark to reach (e.g. the regional mean), positive.
        growth_rate: The country's assumed annual growth (0.25 = +25%/yr).
        target_growth_rate: Benchmark's own annual growth (a moving target).

    Returns:
        Years (possibly fractional); 0.0 when already at or above target;
        ``math.inf`` when the growth differential cannot close the gap.
    """
    if current <= 0 or target <= 0:
        raise ValueError("values must be positive")
    if current >= target:
        return 0.0
    differential = (1 + growth_rate) / (1 + target_growth_rate)
    if differential <= 1.0:
        return math.inf
    return math.log(target / current) / math.log(differential)
