"""The deterministic synthetic world behind every exhibit.

A :class:`Scenario` materialises each dataset lazily and caches it, so a
test session or benchmark run pays each generation cost once.  Everything
is seeded: two scenarios built with the same parameters are identical.

Materialisation is thread-safe: each dataset is guarded by its own
per-scenario lock and a double-checked materialised dict, so eight
threads racing on one property build it exactly once and all receive
the same object.  ``build_all(max_workers=N)`` exploits that by
scheduling independent datasets onto a thread pool via
:mod:`repro.exec.executor`, and an optional :class:`repro.exec.cache.DatasetCache`
short-circuits builds entirely from a persistent on-disk store.

Every dataset build is observable: it runs under a
``scenario.build.<name>`` span/timer and bumps the
``scenario.dataset.built`` counter — or, when served from the disk
cache, the ``scenario.cache.hit`` counter instead (see
:mod:`repro.obs` and ``docs/PERFORMANCE.md``), so
``python -m repro stats`` can attribute a slow scenario to the dataset
responsible.

Builds are also *resilient* (see ``docs/RELIABILITY.md``): each build
attempt runs under a bounded-backoff :class:`repro.exec.retry.RetryPolicy`
with deterministic jitter, an optional
:class:`repro.faults.plan.FaultPlan` gates built values through seeded
byte corruption (the ``repro chaos`` harness), and in lenient mode
(``strict=False``) a build that exhausts its retries leaves a
:class:`repro.core.degrade.DegradedDataset` sentinel instead of raising —
dependent exhibits then render coverage annotations via the typed
:class:`repro.core.degrade.DatasetDegradedError`.

Swapping in real data: every property returns the parsed-data type of its
substrate (archives, datasets, registries), so a pipeline over real
archives only needs a Scenario subclass whose properties load from disk
instead of the synthetic generators.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.apnic.model import APNICEstimates
from repro.apnic.synthetic import synthesize_populations
from repro.atlas.columns import ChaosColumns, TracerouteColumns
from repro.atlas.probes import ProbeRegistry
from repro.atlas.synthetic import (
    synthesize_chaos_columns,
    synthesize_gpdns_columns,
    synthesize_probe_registry,
)
from repro.bgp.archive import ASRelArchive, Prefix2ASArchive
from repro.bgp.synthetic import synthesize_asrel_archive, synthesize_prefix2as_archive
from repro.core.degrade import DatasetDegradedError, DegradedDataset
from repro.exec.retry import DEFAULT_RETRY, RetryPolicy, retry_call
from repro.ipv6.model import AdoptionDataset
from repro.ipv6.synthetic import synthesize_ipv6_adoption
from repro.macro.store import IndicatorStore
from repro.macro.synthetic import synthesize_macro
from repro.mlab.columns import NDTColumns
from repro.mlab.synthetic import NDTLoadModel, synthesize_ndt_columns
from repro.obs import get_registry, timed
from repro.offnets.as2org import OrgMap
from repro.offnets.records import OffnetArchive
from repro.offnets.synthetic import synthesize_offnets, synthesize_org_map
from repro.peeringdb.archive import PeeringDBArchive
from repro.peeringdb.synthetic import synthesize_peeringdb_archive
from repro.registry.delegation import DelegationFile
from repro.registry.synthetic import synthesize_ve_delegations
from repro.rootdns.deployment import RootDeployment
from repro.rootdns.synthetic import synthesize_root_deployment
from repro.telegeography.model import CableMap
from repro.telegeography.synthetic import synthesize_cable_map
from repro.webdeps.model import SiteSurvey
from repro.webdeps.synthetic import synthesize_site_survey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.cache import DatasetCache
    from repro.faults.plan import FaultPlan

T = TypeVar("T")


@dataclass
class Scenario:
    """Lazily-built bundle of every dataset the exhibits read.

    Attributes:
        ndt_tests_per_month: Sample count per country-month for the
            synthetic M-Lab load (larger = tighter medians, slower build).
        gpdns_samples_per_month: Traceroutes per probe-month in the GPDNS
            campaign.
        seed: Seed of the stochastic (M-Lab) generator; all other
            generators are fully scripted.
        cache: Optional persistent dataset cache consulted (and filled)
            by every build; ``None`` (the default) keeps builds purely
            in-process.  Excluded from equality: a cached scenario and
            an uncached one describe the same world.
        strict: ``True`` (the library default) fails fast — a dataset
            build error propagates out of the access, the historical
            behaviour.  ``False`` (the CLI/server default) degrades: a
            build that exhausts its retries stores a
            :class:`DegradedDataset` sentinel and later accesses raise
            the typed :class:`DatasetDegradedError` instead.
        retry: Backoff policy for failed build attempts; ``None`` uses
            :data:`repro.exec.retry.DEFAULT_RETRY`.
        fault_plan: Optional seeded corruption plan gating every build
            (the ``repro chaos`` harness); ``None`` injects nothing.
            Like ``cache``, the reliability knobs are excluded from
            equality — they change how the world is built, not what it
            describes.
        overlay: Optional :class:`repro.ingest.overlay.IngestOverlay`
            of journaled appends merged onto the affected datasets after
            materialisation.  Unlike the reliability knobs it *does*
            take part in equality — a scenario with appended months
            describes a different world — and the base cache entries
            stay keyed on the overlay-free parameters, so only the
            dirty partitions pay any rebuild.
    """

    ndt_tests_per_month: int = 40
    gpdns_samples_per_month: int = 2
    seed: int = 20_240_804
    overlay: object | None = field(default=None, repr=False)
    cache: "DatasetCache | None" = field(default=None, compare=False, repr=False)
    strict: bool = field(default=True, compare=False, repr=False)
    retry: RetryPolicy | None = field(default=None, compare=False, repr=False)
    fault_plan: "FaultPlan | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        # Plain attributes (not dataclass fields): identity-level state
        # that must never take part in equality or repr.
        self._registry_lock = threading.Lock()
        self._dataset_locks: dict[str, threading.Lock] = {}
        self._materialised: dict[str, object] = {}
        # name -> zero-arg builder producing an already-built value from
        # outside this process (the process-pool dispatcher).  Consumed
        # (popped) on first use; any failure falls back to the in-thread
        # thunk, so the pool can never make a build fail.
        self._external_builders: dict[str, Callable[[], object]] = {}

    def cache_params(self) -> dict[str, int]:
        """The scenario parameters that key every cache entry."""
        return {
            "ndt_tests_per_month": self.ndt_tests_per_month,
            "gpdns_samples_per_month": self.gpdns_samples_per_month,
            "seed": self.seed,
        }

    def _lock_for(self, name: str) -> threading.Lock:
        with self._registry_lock:
            lock = self._dataset_locks.get(name)
            if lock is None:
                lock = self._dataset_locks[name] = threading.Lock()
            return lock

    def _build(self, name: str, thunk: Callable[[], T]) -> T:
        """Materialise one dataset, thread-safely, under its span/timer.

        Double-checked per-dataset locking: the first thread in builds
        (or loads from the disk cache) and records metrics once; any
        thread racing it blocks, then returns the same object.  The
        ``scenario.build.<name>`` timer covers materialisation from
        either source — counters (``scenario.dataset.built`` vs
        ``scenario.cache.hit``) say which one paid.

        Builder thunks may touch other datasets (``chaos_observations``
        reads ``probes``); those nest into different per-name locks and
        the dependency graph is acyclic, so no lock cycle can form.

        Failure handling: build attempts retry under :attr:`retry`
        (bounded backoff, deterministic jitter).  When every attempt
        fails, strict mode re-raises the final error; lenient mode
        stores a :class:`DegradedDataset` sentinel, so the failure is
        paid once and every access raises the typed
        :class:`DatasetDegradedError`.  A dependency's degradation is
        never retried — it cascades immediately.
        """
        with self._lock_for(name):
            if name not in self._materialised:
                self._materialised[name] = timed(
                    f"scenario.build.{name}", lambda: self._materialise(name, thunk)
                )
            value = self._materialised[name]
            if isinstance(value, DegradedDataset):
                raise DatasetDegradedError(value)
            return value  # type: ignore[return-value]

    def _materialise(self, name: str, thunk: Callable[[], T]) -> "T | DegradedDataset":
        """One dataset from cache or builder: the value, or its sentinel."""
        registry = get_registry()
        if self.cache is not None:
            from repro.exec.cache import CacheMiss

            params = self.cache_params()
            cached = self.cache.load(name, params)
            if not isinstance(cached, CacheMiss):
                registry.counter("scenario.cache.hit").inc()
                return self._with_overlay(name, cached)  # type: ignore[return-value]
            if cached.reason == "corrupt":
                registry.counter("scenario.cache.corrupt").inc()
            registry.counter("scenario.cache.miss").inc()

        policy = self.retry if self.retry is not None else DEFAULT_RETRY

        def build_once() -> T:
            external = self._external_builders.pop(name, None)
            if external is not None:
                try:
                    value: T = external()  # type: ignore[assignment]
                except Exception:
                    registry.counter("build.procpool.fallback").inc()
                    value = thunk()
            else:
                value = thunk()
            if self.fault_plan is not None:
                value = self.fault_plan.gate(name, value)  # type: ignore[assignment]
            return value

        try:
            value = retry_call(
                build_once,
                policy=policy,
                token=name,
                seed=self.seed,
                non_retryable=(DatasetDegradedError,),
            )
        except DatasetDegradedError as err:
            if self.strict:
                raise
            registry.counter("scenario.dataset.degraded").inc()
            return DegradedDataset(
                name=name,
                reason=f"dependency {err.name!r} degraded: {err.reason}",
                attempts=1,
            )
        except Exception as exc:
            if self.strict:
                raise
            registry.counter("scenario.dataset.degraded").inc()
            return DegradedDataset(
                name=name,
                reason=f"{type(exc).__name__}: {exc}",
                attempts=policy.attempts,
            )

        if self.cache is not None:
            # store() degrades to None on write errors (ENOSPC and kin);
            # only a landed entry counts as stored.
            if self.cache.store(name, self.cache_params(), value) is not None:
                registry.counter("scenario.cache.store").inc()
        registry.counter("scenario.dataset.built").inc()
        return self._with_overlay(name, value)

    def _with_overlay(self, name: str, value: T) -> T:
        """*value* with any journaled appends for *name* merged in.

        The base value (cached or freshly built) never includes appended
        records — overlay shards are cached separately and merged here,
        on the way out, so base cache entries stay valid across appends.
        """
        if self.overlay is None:
            return value
        from repro.ingest.overlay import apply_overlay

        return apply_overlay(self, name, value)

    # -- degradation introspection -------------------------------------------

    def materialise(self, name: str) -> object:
        """Build dataset *name*; returns its value or degradation sentinel.

        Unlike property access this never raises on a degraded dataset,
        which is what bulk builders (``build_all``, the parallel
        executor) need: one bad dataset must not abort the sweep.  In
        strict mode a build failure still propagates.
        """
        try:
            return getattr(self, name)
        except DatasetDegradedError as err:
            return err.degraded

    def degraded(self) -> list[DegradedDataset]:
        """Sentinels of every dataset that degraded, in dataset order."""
        with self._registry_lock:
            snapshot = dict(self._materialised)
        return [
            value
            for _name, value in sorted(snapshot.items())
            if isinstance(value, DegradedDataset)
        ]

    def coverage(self) -> tuple[int, int]:
        """(available, total) dataset counts — the "k/n" in reports."""
        total = len(dataset_names())
        return total - len(self.degraded()), total

    # -- Section 2: macro ---------------------------------------------------

    @cached_property
    def macro(self) -> IndicatorStore:
        """IMF/OECD indicator store (Fig. 1 / Fig. 13)."""
        return self._build("macro", synthesize_macro)

    # -- Section 4: address space -------------------------------------------

    @cached_property
    def delegations(self) -> DelegationFile:
        """LACNIC delegation file for Venezuela (Fig. 2 denominator)."""
        return self._build("delegations", synthesize_ve_delegations)

    @cached_property
    def prefix2as(self) -> Prefix2ASArchive:
        """Monthly RouteViews prefix2as archive (Fig. 2 / Fig. 14)."""
        return self._build("prefix2as", synthesize_prefix2as_archive)

    # -- Section 5: infrastructure ---------------------------------------------

    @cached_property
    def peeringdb(self) -> PeeringDBArchive:
        """Monthly PeeringDB archive (Figs. 3, 10, 15, 21; Table 2)."""
        return self._build("peeringdb", synthesize_peeringdb_archive)

    @cached_property
    def cables(self) -> CableMap:
        """Submarine cable map (Fig. 4)."""
        return self._build("cables", synthesize_cable_map)

    @cached_property
    def ipv6(self) -> AdoptionDataset:
        """Meta IPv6 adoption dataset (Fig. 5)."""
        return self._build("ipv6", synthesize_ipv6_adoption)

    @cached_property
    def root_deployment(self) -> RootDeployment:
        """Root server site schedule (ground truth behind Fig. 6)."""
        return self._build("root_deployment", synthesize_root_deployment)

    @cached_property
    def probes(self) -> ProbeRegistry:
        """RIPE Atlas probe fleet (Figs. 12, 17, 20)."""
        return self._build("probes", synthesize_probe_registry)

    @cached_property
    def chaos_observations(self) -> ChaosColumns:
        """Parsed CHAOS TXT answers (Figs. 6, 16, 17), packed columns."""

        def build() -> ChaosColumns:
            observations = synthesize_chaos_columns(
                self.probes, self.root_deployment
            )
            get_registry().counter("rootdns.chaos.rows_emitted").inc(
                len(observations)
            )
            return observations

        return self._build("chaos_observations", build)

    # -- Sections 5.5 / App. G-H: content infrastructure -------------------------

    @cached_property
    def populations(self) -> APNICEstimates:
        """APNIC per-AS population estimates (Table 1 and weighting)."""
        return self._build("populations", synthesize_populations)

    @cached_property
    def offnets(self) -> OffnetArchive:
        """Hypergiant off-net archive (Figs. 7, 18)."""
        return self._build("offnets", lambda: synthesize_offnets(self.populations))

    @cached_property
    def orgmap(self) -> OrgMap:
        """as2org+ organisation map."""
        return self._build("orgmap", synthesize_org_map)

    @cached_property
    def site_survey(self) -> SiteSurvey:
        """Third-party dependency survey (Fig. 19)."""
        return self._build("site_survey", synthesize_site_survey)

    # -- Section 6: interdomain --------------------------------------------------

    @cached_property
    def asrel(self) -> ASRelArchive:
        """CAIDA AS-relationship archive (Figs. 8, 9)."""
        return self._build("asrel", synthesize_asrel_archive)

    # -- Section 7: performance ----------------------------------------------------

    @cached_property
    def ndt_tests(self) -> NDTColumns:
        """Synthetic M-Lab NDT test load (Fig. 11), packed columns."""

        def build() -> NDTColumns:
            model = NDTLoadModel(
                seed=self.seed, tests_per_month=self.ndt_tests_per_month
            )
            return synthesize_ndt_columns(model)

        return self._build("ndt_tests", build)

    @cached_property
    def gpdns_traceroutes(self) -> TracerouteColumns:
        """GPDNS traceroute campaign results (Figs. 12, 20), packed columns."""

        def build() -> TracerouteColumns:
            return synthesize_gpdns_columns(
                self.probes, samples_per_month=self.gpdns_samples_per_month
            )

        return self._build("gpdns_traceroutes", build)

    # -- whole-world construction --------------------------------------------

    def build_all(self, max_workers: int | None = None) -> list[str]:
        """Materialise every dataset; returns the names, definition order.

        Args:
            max_workers: ``None`` or ``1`` builds serially in definition
                order (the historical behaviour); ``2+`` schedules
                independent datasets onto a thread pool via
                :func:`repro.exec.executor.build_parallel`.  Either way
                the resulting datasets are identical — generators are
                deterministic and share no state.
        """
        names = dataset_names()
        if max_workers is not None and max_workers > 1:
            from repro.exec.executor import build_parallel

            build_parallel(self, max_workers=max_workers)
        else:
            for name in names:
                self.materialise(name)
        return names


def dataset_names() -> list[str]:
    """Every Scenario dataset property, in definition order."""
    return [
        name
        for name, attr in vars(Scenario).items()
        if isinstance(attr, cached_property)
    ]
