"""Figure-series extraction: the actual plotted lines of each figure.

The exhibits in :mod:`repro.core.exhibits` report headline numbers; this
module exposes the *series* behind the paper's recurring three-panel
layout (country comparison on top, a Venezuela zoom lower-left, a
regional aggregate lower-right), so downstream users can re-plot the
figures with any tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.scenario import Scenario
from repro.geo.countries import is_lacnic
from repro.timeseries.panel import CountryPanel
from repro.timeseries.series import MonthlySeries


class AggregateMode(str, Enum):
    """How the figure's lower-right panel aggregates the region."""

    SUM = "sum"
    MEAN = "mean"
    MEDIAN = "median"


@dataclass
class ThreePanelFigure:
    """The paper's standard figure layout as data.

    Attributes:
        figure_id: Paper figure id (e.g. ``"fig03"``).
        title: Figure caption, abbreviated.
        panel: Per-country series (the top panel; highlight a subset).
        highlight: Countries plotted in vivid colours in the paper.
        zoom: The Venezuela-only series (lower-left).
        aggregate: The regional aggregate series (lower-right).
        aggregate_mode: How the aggregate was computed.
        unit: Y-axis unit.
    """

    figure_id: str
    title: str
    panel: CountryPanel
    highlight: tuple[str, ...]
    zoom: MonthlySeries
    aggregate: MonthlySeries
    aggregate_mode: AggregateMode
    unit: str


def _three_panel(
    figure_id: str,
    title: str,
    panel: CountryPanel,
    mode: AggregateMode,
    unit: str,
    highlight: tuple[str, ...] = ("AR", "BR", "CL", "CO", "MX", "UY", "VE"),
) -> ThreePanelFigure:
    lacnic_panel = panel.filter_countries(is_lacnic)
    if mode is AggregateMode.SUM:
        aggregate = lacnic_panel.regional_sum()
    elif mode is AggregateMode.MEAN:
        aggregate = lacnic_panel.regional_mean()
    else:
        aggregate = lacnic_panel.regional_median()
    zoom = lacnic_panel.get("VE", MonthlySeries())
    return ThreePanelFigure(
        figure_id=figure_id,
        title=title,
        panel=lacnic_panel,
        highlight=highlight,
        zoom=zoom,
        aggregate=aggregate,
        aggregate_mode=mode,
        unit=unit,
    )


def fig03_series(scenario: Scenario) -> ThreePanelFigure:
    """Fig. 3: peering facilities per country."""
    return _three_panel(
        "fig03",
        "Peering facilities",
        scenario.peeringdb.facility_count_panel(),
        AggregateMode.SUM,
        "facilities",
    )


def fig04_series(scenario: Scenario) -> ThreePanelFigure:
    """Fig. 4: submarine cables per country."""
    figure = _three_panel(
        "fig04",
        "Submarine cable networks",
        scenario.cables.count_panel(1990, 2024),
        AggregateMode.SUM,
        "cables",
    )
    # The paper's lower-right counts each cable once region-wide.
    figure.aggregate = scenario.cables.regional_count_series(1990, 2024)
    return figure


def fig05_series(scenario: Scenario) -> ThreePanelFigure:
    """Fig. 5: IPv6 adoption per country."""
    return _three_panel(
        "fig05",
        "IPv6 adoption (Meta)",
        scenario.ipv6.panel(),
        AggregateMode.MEAN,
        "%",
    )


def fig06_series(scenario: Scenario) -> ThreePanelFigure:
    """Fig. 6: root DNS replicas per country."""
    from repro.rootdns.analysis import replica_count_panel

    return _three_panel(
        "fig06",
        "Root DNS replicas",
        replica_count_panel(scenario.chaos_observations),
        AggregateMode.SUM,
        "replicas",
    )


def fig11_series(scenario: Scenario) -> ThreePanelFigure:
    """Fig. 11: median download speed per country."""
    from repro.mlab.aggregate import median_download_panel

    return _three_panel(
        "fig11",
        "Median download speed",
        median_download_panel(scenario.ndt_tests),
        AggregateMode.MEAN,
        "Mbps",
    )


def fig12_series(scenario: Scenario) -> ThreePanelFigure:
    """Fig. 12: median RTT to Google Public DNS per country."""
    from repro.core.exhibits.performance import gpdns_country_medians

    return _three_panel(
        "fig12",
        "Median RTT to Google Public DNS",
        gpdns_country_medians(scenario),
        AggregateMode.MEAN,
        "ms",
    )


def fig17_series(scenario: Scenario) -> ThreePanelFigure:
    """Fig. 17: RIPE Atlas probes per country."""
    from repro.rootdns.analysis import probe_count_panel

    return _three_panel(
        "fig17",
        "RIPE Atlas probes",
        probe_count_panel(scenario.chaos_observations),
        AggregateMode.SUM,
        "probes",
    )


#: All three-panel figure builders by id.
THREE_PANEL_FIGURES = {
    "fig03": fig03_series,
    "fig04": fig04_series,
    "fig05": fig05_series,
    "fig06": fig06_series,
    "fig11": fig11_series,
    "fig12": fig12_series,
    "fig17": fig17_series,
}
