"""Scenario persistence: write every dataset in its wire format, load back.

This is the swap-in-real-data path made concrete.  ``ScenarioStore.save``
materialises a scenario into a directory laid out like a mirror of the
original archives (monthly snapshot files for the longitudinal sources,
single files for the rest); ``ScenarioStore.load`` returns a
:class:`StoredScenario` whose datasets come from that directory.  Replace
any file with a real archive download in the same format and the whole
pipeline runs on it.

Directory layout::

    <root>/
      imf_indicators.csv            delegated-lacnic-extended-latest
      apnic_populations.csv         submarine_cables.json
      ipv6_adoption.csv             offnets_artifacts.csv
      orgmap.json                   webdeps_survey.csv
      probes.json                   root_deployment.json
      ndt_downloads.jsonl           chaos_results.jsonl
      gpdns_traceroutes.jsonl
      asrel/<YYYY-MM>.as-rel.txt
      prefix2as/<YYYY-MM>.pfx2as
      peeringdb/<YYYY-MM>.json
"""

from __future__ import annotations

from functools import cached_property
from pathlib import Path

from repro.apnic.model import APNICEstimates
from repro.atlas.dnsbuiltin import DNSBuiltinResult
from repro.atlas.probes import ProbeRegistry
from repro.atlas.traceroute import TracerouteResult
from repro.bgp.archive import ASRelArchive, Prefix2ASArchive
from repro.bgp.asrel import parse_asrel
from repro.bgp.prefix2as import parse_prefix2as
from repro.core.scenario import Scenario
from repro.ipv6.model import AdoptionDataset
from repro.macro.store import IndicatorStore
from repro.mlab.ndt import parse_ndt_jsonl, write_ndt_jsonl
from repro.offnets.as2org import OrgMap
from repro.offnets.records import OffnetArchive
from repro.peeringdb.archive import PeeringDBArchive
from repro.peeringdb.schema import PeeringDBSnapshot
from repro.registry.delegation import parse_delegation_file
from repro.rootdns.deployment import RootDeployment
from repro.telegeography.model import CableMap
from repro.timeseries.month import Month
from repro.webdeps.model import SiteSurvey


class ScenarioStore:
    """Save/load scenarios under one directory."""

    def __init__(self, directory: Path | str):
        self.root = Path(directory)

    # -- saving ------------------------------------------------------------

    def save(self, scenario: Scenario) -> None:
        """Materialise every dataset of *scenario* under the root."""
        self.root.mkdir(parents=True, exist_ok=True)
        scenario.macro.save(self.root / "imf_indicators.csv")
        scenario.delegations.save(self.root / "delegated-lacnic-extended-latest")
        scenario.populations.save(self.root / "apnic_populations.csv")
        scenario.ipv6.save(self.root / "ipv6_adoption.csv")
        scenario.offnets.save(self.root / "offnets_artifacts.csv")
        scenario.orgmap.save(self.root / "orgmap.json")
        scenario.site_survey.save(self.root / "webdeps_survey.csv")
        scenario.cables.save(self.root / "submarine_cables.json")
        scenario.probes.save(self.root / "probes.json")
        scenario.root_deployment.save(self.root / "root_deployment.json")

        asrel_dir = self.root / "asrel"
        asrel_dir.mkdir(exist_ok=True)
        for month, snapshot in scenario.asrel.items():
            snapshot.save(asrel_dir / f"{month}.as-rel.txt")

        p2as_dir = self.root / "prefix2as"
        p2as_dir.mkdir(exist_ok=True)
        for month, snapshot in scenario.prefix2as.items():
            snapshot.save(p2as_dir / f"{month}.pfx2as")

        pdb_dir = self.root / "peeringdb"
        pdb_dir.mkdir(exist_ok=True)
        for month, snapshot in scenario.peeringdb.items():
            snapshot.save(pdb_dir / f"{month}.json")

        write_ndt_jsonl(scenario.ndt_tests, self.root / "ndt_downloads.jsonl")
        with open(self.root / "gpdns_traceroutes.jsonl", "w", encoding="utf-8") as f:
            for result in scenario.gpdns_traceroutes:
                f.write(result.to_json())
                f.write("\n")
        with open(self.root / "chaos_results.jsonl", "w", encoding="utf-8") as f:
            for obs in scenario.chaos_observations:
                result = DNSBuiltinResult(
                    probe_id=obs.probe_id,
                    probe_country=obs.probe_country,
                    root_letter=obs.letter,
                    answer=obs.answer,
                    month=obs.month,
                )
                f.write(result.to_json())
                f.write("\n")

    # -- loading ------------------------------------------------------------

    def load(self) -> "StoredScenario":
        """A scenario view over the stored files."""
        return StoredScenario(self.root)


def _monthly_files(directory: Path, suffix: str) -> dict[Month, Path]:
    return {
        Month.parse(path.name[: len("YYYY-MM")]): path
        for path in sorted(directory.glob(f"*{suffix}"))
    }


class StoredScenario(Scenario):
    """A Scenario whose datasets are read from a ScenarioStore directory.

    Inherits every analysis-facing property name from :class:`Scenario`,
    so exhibits and examples run unchanged on stored (or real) data.
    """

    def __init__(self, root: Path | str):
        super().__init__()
        self.root = Path(root)

    def _read(self, name: str) -> str:
        return (self.root / name).read_text(encoding="utf-8")

    @cached_property
    def macro(self) -> IndicatorStore:
        return IndicatorStore.from_csv(self._read("imf_indicators.csv"))

    @cached_property
    def delegations(self):
        return parse_delegation_file(self._read("delegated-lacnic-extended-latest"))

    @cached_property
    def populations(self) -> APNICEstimates:
        return APNICEstimates.from_csv(self._read("apnic_populations.csv"))

    @cached_property
    def ipv6(self) -> AdoptionDataset:
        return AdoptionDataset.from_csv(self._read("ipv6_adoption.csv"))

    @cached_property
    def offnets(self) -> OffnetArchive:
        return OffnetArchive.from_csv(self._read("offnets_artifacts.csv"))

    @cached_property
    def orgmap(self) -> OrgMap:
        return OrgMap.from_json(self._read("orgmap.json"))

    @cached_property
    def site_survey(self) -> SiteSurvey:
        return SiteSurvey.from_csv(self._read("webdeps_survey.csv"))

    @cached_property
    def cables(self) -> CableMap:
        return CableMap.from_json(self._read("submarine_cables.json"))

    @cached_property
    def probes(self) -> ProbeRegistry:
        return ProbeRegistry.from_json(self._read("probes.json"))

    @cached_property
    def root_deployment(self) -> RootDeployment:
        return RootDeployment.from_json(self._read("root_deployment.json"))

    @cached_property
    def asrel(self) -> ASRelArchive:
        files = _monthly_files(self.root / "asrel", ".as-rel.txt")
        return ASRelArchive(
            {m: parse_asrel(p.read_text(encoding="utf-8")) for m, p in files.items()}
        )

    @cached_property
    def prefix2as(self) -> Prefix2ASArchive:
        files = _monthly_files(self.root / "prefix2as", ".pfx2as")
        return Prefix2ASArchive(
            {m: parse_prefix2as(p.read_text(encoding="utf-8")) for m, p in files.items()}
        )

    @cached_property
    def peeringdb(self) -> PeeringDBArchive:
        files = _monthly_files(self.root / "peeringdb", ".json")
        return PeeringDBArchive(
            {m: PeeringDBSnapshot.load(p) for m, p in files.items()}
        )

    @cached_property
    def ndt_tests(self) -> list:
        return list(parse_ndt_jsonl(self.root / "ndt_downloads.jsonl"))

    @cached_property
    def gpdns_traceroutes(self) -> list:
        with open(self.root / "gpdns_traceroutes.jsonl", encoding="utf-8") as f:
            return [TracerouteResult.from_json(line) for line in f if line.strip()]

    @cached_property
    def chaos_observations(self) -> list:
        with open(self.root / "chaos_results.jsonl", encoding="utf-8") as f:
            return [
                DNSBuiltinResult.from_json(line).to_observation()
                for line in f
                if line.strip()
            ]
