"""Data-driven findings: the paper's headline bullets, computed.

The paper's introduction summarises the crisis's network impact in four
bullets (infrastructure, interdomain connectivity, access performance).
This module regenerates those sentences from the scenario's own data, so
every number in the narrative is measured, not quoted.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.scenario import Scenario
from repro.registry.address_plan import AS_CANTV
from repro.timeseries.month import Month


@dataclass(frozen=True, slots=True)
class Finding:
    """One computed headline finding."""

    topic: str
    text: str


def infrastructure_finding(scenario: Scenario) -> Finding:
    """The submarine-cable / peering-facility bullet."""
    cables = scenario.cables
    region_before = len(cables.regional_cables(2000))
    region_after = len(cables.regional_cables(2024))
    ve_added = [c.name for c in cables.cables_touching("VE") if c.rfs_year > 2000]
    facilities = scenario.peeringdb.facility_count_panel()
    total = facilities.regional_sum()
    ve_facilities = facilities["VE"].last_value()
    text = (
        f"While the region grew from {region_before} to {region_after} submarine "
        f"cables, Venezuela added only {len(ve_added)} ({', '.join(ve_added)}); "
        f"peering facilities grew from {total.first_value():.0f} to "
        f"{total.last_value():.0f} region-wide while Venezuela hosts just "
        f"{ve_facilities:.0f}."
    )
    return Finding("infrastructure", text)


def interdomain_finding(scenario: Scenario) -> Finding:
    """The CANTV transit / IXP bullet."""
    from repro.bgp.synthetic import US_REGISTERED_PROVIDERS
    from repro.ixp.coverage import country_us_presence

    ups = scenario.asrel.upstream_count_series(AS_CANTV)
    # The trough is measured after the 2013 peak (the early years also
    # had few providers, but that was growth, not decline).
    trough = ups.clip_range(ups.argmax(), ups.last_month()).min()
    final = scenario.asrel[scenario.asrel.months()[-1]].upstreams_of(AS_CANTV)
    us_left = sorted(final & US_REGISTERED_PROVIDERS)
    networks, pct = country_us_presence(
        scenario.peeringdb.latest(), scenario.populations, "VE"
    )
    text = (
        f"CANTV's transit degree fell from {ups.max():.0f} providers at the "
        f"2013 peak to {trough:.0f}, leaving {len(us_left)} US-registered "
        f"provider; Venezuela hosts no IXP, and only {networks} of its networks "
        f"(serving {pct:.0f}% of users) peer at exchanges in the US."
    )
    return Finding("interdomain", text)


def performance_finding(scenario: Scenario) -> Finding:
    """The bandwidth / latency bullet."""
    from repro.atlas.traceroute import min_rtt_per_probe_month
    from repro.mlab.aggregate import median_download_panel
    from repro.timeseries.stats import stagnation_months

    panel = median_download_panel(scenario.ndt_tests)
    ve = panel["VE"].rolling_mean(3)
    below = stagnation_months(ve, 1.0)
    latest_speed = panel["VE"].last_value()

    minima = min_rtt_per_probe_month(scenario.gpdns_traceroutes)
    probe_country = {p.probe_id: p.country for p in scenario.probes.probes}
    last_half = [Month(2023, m) for m in range(7, 13)]
    by_country: dict[str, list[float]] = {}
    for (pid, month), rtt in minima.items():
        if month in last_half:
            by_country.setdefault(probe_country[pid], []).append(rtt)
    medians = {cc: statistics.median(rtts) for cc, rtts in by_country.items()}
    regional = statistics.fmean(medians.values())
    ratio = medians["VE"] / regional
    text = (
        f"Download speeds stayed below 1 Mbps for {below // 12} years "
        f"(now {latest_speed:.1f} Mbps), and Venezuelan latency to Google "
        f"Public DNS runs {ratio:.2f}x the regional average "
        f"({medians['VE']:.1f} ms vs {regional:.1f} ms)."
    )
    return Finding("performance", text)


def dns_finding(scenario: Scenario) -> Finding:
    """The root-DNS regression bullet."""
    from repro.rootdns.analysis import replica_count_panel

    panel = replica_count_panel(scenario.chaos_observations)
    total = panel.regional_sum()
    ve = panel.get("VE")
    ve_start = ve.first_value() if ve else 0
    text = (
        f"Root DNS replicas in the region grew from {total.first_value():.0f} "
        f"to {total.last_value():.0f}, while Venezuela went the opposite way: "
        f"from {ve_start:.0f} domestic replicas to none."
    )
    return Finding("dns", text)


def all_findings(scenario: Scenario) -> list[Finding]:
    """Every computed finding, in the paper's presentation order."""
    return [
        infrastructure_finding(scenario),
        interdomain_finding(scenario),
        performance_finding(scenario),
        dns_finding(scenario),
    ]


def format_findings(findings: list[Finding]) -> str:
    """Already-computed findings as a bulleted block."""
    return "\n".join(f"* [{finding.topic}] {finding.text}" for finding in findings)


def render_findings(scenario: Scenario) -> str:
    """The findings as a bulleted block."""
    return format_findings(all_findings(scenario))
