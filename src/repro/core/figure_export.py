"""Tidy CSV export of figure series, for external plotting tools.

Each three-panel figure flattens to one long-format CSV::

    figure,series,month,value
    fig11,AR,2007-07,0.55
    fig11,__zoom__,2007-07,0.52
    fig11,__aggregate__,2007-07,0.58

``series`` is a country code for the top panel, ``__zoom__`` for the
Venezuela panel and ``__aggregate__`` for the regional one -- exactly the
three panels a plotting script needs to redraw the paper's layout.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.core.figures import THREE_PANEL_FIGURES, ThreePanelFigure
from repro.core.scenario import Scenario

ZOOM_SERIES = "__zoom__"
AGGREGATE_SERIES = "__aggregate__"


def figure_to_csv(figure: ThreePanelFigure) -> str:
    """Flatten one figure to the long format."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["figure", "series", "month", "value"])
    for cc, series in figure.panel.items():
        for month, value in series.items():
            writer.writerow([figure.figure_id, cc, str(month), repr(value)])
    for month, value in figure.zoom.items():
        writer.writerow([figure.figure_id, ZOOM_SERIES, str(month), repr(value)])
    for month, value in figure.aggregate.items():
        writer.writerow([figure.figure_id, AGGREGATE_SERIES, str(month), repr(value)])
    return out.getvalue()


def export_all_figures(scenario: Scenario, directory: Path | str) -> list[Path]:
    """Write every three-panel figure's CSV under *directory*."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    written = []
    for figure_id, build in sorted(THREE_PANEL_FIGURES.items()):
        path = root / f"{figure_id}.csv"
        path.write_text(figure_to_csv(build(scenario)), encoding="utf-8")
        written.append(path)
    return written
