"""Graceful degradation: the sentinel a failed dataset build leaves behind.

In lenient mode (``Scenario(strict=False)``, the CLI and server default)
a dataset build that still fails after its retries does not abort the
scenario: the slot is filled with a :class:`DegradedDataset` sentinel.
Touching the dataset afterwards raises :class:`DatasetDegradedError` — a
*typed* failure dependent code can catch to render "k/n datasets
available" coverage annotations instead of a traceback (see
``repro.core.report`` and ``repro.core.scorecard``).

Strict mode (``strict=True``, the library default and the CLI's
``--strict`` flag) restores fail-fast: the original build exception
propagates out of the first access, exactly as before this subsystem
existed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DegradedDataset:
    """What a scenario remembers about a dataset it could not build.

    Attributes:
        name: The dataset property name (``"peeringdb"``, ...).
        reason: One-line cause, e.g. the final build error.
        attempts: How many build attempts were made before giving up.
    """

    name: str
    reason: str
    attempts: int = 1

    def render(self) -> str:
        return f"{self.name}: {self.reason} (after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"


class DatasetDegradedError(RuntimeError):
    """Raised when code touches a dataset that degraded during build."""

    def __init__(self, degraded: DegradedDataset):
        self.degraded = degraded
        super().__init__(
            f"dataset {degraded.name!r} is degraded: {degraded.reason}"
        )

    @property
    def name(self) -> str:
        return self.degraded.name

    @property
    def reason(self) -> str:
        return self.degraded.reason
