"""Run exhibits and render the paper-vs-measured report."""

from __future__ import annotations

from repro.core.exhibit import Exhibit, exhibit_ids, get_exhibit
from repro.core.scenario import Scenario


def run_exhibit(scenario: Scenario, exhibit_id: str) -> Exhibit:
    """Run one exhibit against a scenario."""
    return get_exhibit(exhibit_id)(scenario)


def run_all(scenario: Scenario) -> list[Exhibit]:
    """Run every registered exhibit, in id order."""
    return [run_exhibit(scenario, exhibit_id) for exhibit_id in exhibit_ids()]


def render_report(scenario: Scenario) -> str:
    """The full text report: every exhibit's table, separated by rules."""
    parts = [exhibit.render() for exhibit in run_all(scenario)]
    rule = "\n" + "=" * 72 + "\n"
    return rule.join(parts)
