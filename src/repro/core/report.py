"""Run exhibits and render the paper-vs-measured report.

Every exhibit run is timed into ``exhibit.run.<id>`` and counted in
``exhibit.runs`` (see :mod:`repro.obs`), so ``python -m repro stats``
and the ``--metrics-json`` artifact report per-exhibit wall time.
"""

from __future__ import annotations

from repro.core.exhibit import Exhibit, exhibit_ids, get_exhibit
from repro.core.scenario import Scenario
from repro.obs import get_registry, timed, trace_span


def run_exhibit(scenario: Scenario, exhibit_id: str) -> Exhibit:
    """Run one exhibit against a scenario."""
    fn = get_exhibit(exhibit_id)
    exhibit = timed(f"exhibit.run.{exhibit_id}", lambda: fn(scenario))
    get_registry().counter("exhibit.runs").inc()
    return exhibit


def run_all(scenario: Scenario) -> list[Exhibit]:
    """Run every registered exhibit, in id order."""
    with trace_span("report.run.all"):
        return [run_exhibit(scenario, exhibit_id) for exhibit_id in exhibit_ids()]


def render_report(scenario: Scenario) -> str:
    """The full text report: every exhibit's table, separated by rules."""
    parts = [exhibit.render() for exhibit in run_all(scenario)]
    rule = "\n" + "=" * 72 + "\n"
    return rule.join(parts)
