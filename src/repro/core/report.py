"""Run exhibits and render the paper-vs-measured report.

Every exhibit run is timed into ``exhibit.run.<id>`` and counted in
``exhibit.runs`` (see :mod:`repro.obs`), so ``python -m repro stats``
and the ``--metrics-json`` artifact report per-exhibit wall time.

Degradation (see ``docs/RELIABILITY.md``): an exhibit whose scenario
dataset degraded in lenient mode renders as an empty table carrying a
``degraded:`` note instead of raising, and the report gains a trailing
coverage section naming the unavailable datasets.  When nothing is
degraded the report is byte-identical to the historical output.
"""

from __future__ import annotations

from repro.core.degrade import DatasetDegradedError
from repro.core.exhibit import Exhibit, exhibit_ids, get_exhibit
from repro.core.scenario import Scenario
from repro.obs import get_registry, timed, trace_span

#: Note prefix marking an exhibit that could not run (used by the chaos
#: report and tests to count degraded exhibits without a new field).
DEGRADED_NOTE_PREFIX = "degraded:"


def is_degraded(exhibit: Exhibit) -> bool:
    """Whether *exhibit* is a degradation placeholder, not a result."""
    return exhibit.notes.startswith(DEGRADED_NOTE_PREFIX)


def run_exhibit(scenario: Scenario, exhibit_id: str) -> Exhibit:
    """Run one exhibit against a scenario.

    A :class:`DatasetDegradedError` out of the exhibit function becomes
    an empty placeholder exhibit (``degraded:`` note) rather than a
    raise — one unavailable dataset must not take down a 23-exhibit
    report.  Any other exception propagates unchanged.
    """
    fn = get_exhibit(exhibit_id)
    try:
        exhibit = timed(f"exhibit.run.{exhibit_id}", lambda: fn(scenario))
    except DatasetDegradedError as err:
        get_registry().counter("exhibit.degraded").inc()
        exhibit = Exhibit(
            exhibit_id=exhibit_id,
            title=_placeholder_title(exhibit_id),
            rows=[],
            notes=f"{DEGRADED_NOTE_PREFIX} dataset {err.name!r} unavailable ({err.reason})",
        )
    get_registry().counter("exhibit.runs").inc()
    return exhibit


def _placeholder_title(exhibit_id: str) -> str:
    from repro.core.exhibit import exhibit_title

    return exhibit_title(exhibit_id)


def run_all(scenario: Scenario) -> list[Exhibit]:
    """Run every registered exhibit, in id order."""
    with trace_span("report.run.all"):
        return [run_exhibit(scenario, exhibit_id) for exhibit_id in exhibit_ids()]


def coverage_section(scenario: Scenario, exhibits: list[Exhibit]) -> str:
    """The ``k/n datasets available`` trailer, or ``""`` when complete.

    Strictly additive: a fully healthy run returns the empty string so
    the report stays byte-identical to the pre-degradation output.
    """
    degraded = scenario.degraded()
    if not degraded:
        return ""
    available, total = scenario.coverage()
    lines = [
        f"COVERAGE: {available}/{total} datasets available",
    ]
    lines.extend(f"  degraded {d.render()}" for d in degraded)
    bad_exhibits = [e.exhibit_id for e in exhibits if is_degraded(e)]
    if bad_exhibits:
        lines.append(
            f"  exhibits affected: {len(bad_exhibits)}/{len(exhibits)}"
            f" ({', '.join(bad_exhibits)})"
        )
    return "\n".join(lines)


def render_report(scenario: Scenario) -> str:
    """The full text report: every exhibit's table, separated by rules.

    When any dataset degraded (lenient mode), a coverage section is
    appended after the final exhibit; otherwise the output is identical
    to the historical report.
    """
    exhibits = run_all(scenario)
    parts = [exhibit.render() for exhibit in exhibits]
    rule = "\n" + "=" * 72 + "\n"
    trailer = coverage_section(scenario, exhibits)
    if trailer:
        parts.append(trailer)
    return rule.join(parts)
