"""Scripted synthetic BGP histories calibrated to the paper.

Two generators live here:

* :func:`synthesize_asrel_archive` -- monthly AS-relationship snapshots
  from 1998 to 2023 in which CANTV-AS8048's transit history follows the
  paper's Fig. 9 roster (11 upstreams at the 2013 peak, 3 by 2020, a
  rebound afterwards, with the scripted departures of every US-registered
  provider except Columbus Networks) and its customer base grows after the
  2007 nationalisation as described in Section 6.1.
* :func:`synthesize_prefix2as_archive` -- monthly RouteViews prefix2as
  snapshots from 2008 to 2024 implementing the announcement schedules
  behind Fig. 2 and the Appendix C Telefonica withdrawal/reappearance
  (several /17s vanish in June 2016 and return in June 2023 as covering
  aggregates).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass

from repro.bgp.archive import ASRelArchive, Prefix2ASArchive
from repro.bgp.asrel import P2C, P2P, ASRelationshipSnapshot, Relationship
from repro.bgp.prefix2as import OriginEntry, Prefix2ASSnapshot
from repro.obs import get_registry
from repro.registry import address_plan
from repro.registry.address_plan import AS_CANTV, AS_TELEFONICA
from repro.timeseries.month import Month, month_range


@dataclass(frozen=True, slots=True)
class TransitProvider:
    """One provider in CANTV's transit history (a Fig. 9 row)."""

    asn: int
    name: str
    country: str
    #: Service intervals as ((start, end), ...) with end=None for "ongoing".
    intervals: tuple[tuple[Month, Month | None], ...]

    def active_in(self, month: Month, archive_end: Month) -> bool:
        """Whether the provider served CANTV in *month*."""
        for start, end in self.intervals:
            effective_end = end if end is not None else archive_end
            if start <= month <= effective_end:
                return True
        return False


def _iv(start: str, end: str | None) -> tuple[Month, Month | None]:
    return (Month.parse(start), Month.parse(end) if end else None)


#: CANTV's transit providers: the Fig. 9 roster.  Departure dates follow the
#: paper's narrative: Verizon/Sprint/AT&T leave in 2013, GTT (both ASNs) in
#: 2017, Level3 (both ASNs) in 2018; Arelion and Telxius also stop; Columbus
#: Networks remains the only US-registered provider; Telecom Italia is the
#: longstanding partner; Orange returns after a period of inactivity;
#: V.tal and Gold Data sustain the recent rebound.
CANTV_TRANSIT_INTERVALS: tuple[TransitProvider, ...] = (
    TransitProvider(701, "Verizon", "US", (_iv("1998-01", "2013-06"),)),
    TransitProvider(1239, "Sprint", "US", (_iv("1999-02", "2013-09"),)),
    TransitProvider(1299, "Arelion", "SE", (_iv("2012-06", "2016-08"),)),
    TransitProvider(3257, "GTT", "US", (_iv("2010-04", "2017-05"),)),
    TransitProvider(3356, "Level3/Lumen/Cirion", "US", (_iv("2008-04", "2018-06"),)),
    TransitProvider(3549, "Level3 (Global Crossing)", "US", (_iv("2000-04", "2018-03"),)),
    TransitProvider(4004, "Global One", "US", (_iv("1998-06", "2002-04"),)),
    TransitProvider(4436, "GTT (nLayer)", "US", (_iv("2012-03", "2017-05"),)),
    TransitProvider(5511, "Orange", "FR", (_iv("2007-04", "2011-12"), _iv("2021-03", None))),
    TransitProvider(6762, "Telecom Italia Sparkle", "IT", (_iv("2001-04", None),)),
    TransitProvider(7018, "AT&T", "US", (_iv("2004-04", "2013-12"),)),
    TransitProvider(7927, "Genuity LatAm", "US", (_iv("1998-01", "2003-06"),)),
    TransitProvider(12956, "Telxius", "ES", (_iv("2006-04", "2016-12"),)),
    TransitProvider(19962, "Telscape", "US", (_iv("2003-05", "2009-08"),)),
    TransitProvider(23520, "Columbus Networks", "US", (_iv("2005-04", None),)),
    TransitProvider(28007, "Gold Data", "CR", (_iv("2021-09", None),)),
    TransitProvider(52320, "V.tal (GlobeNet)", "BR", (_iv("2014-06", None),)),
    TransitProvider(262589, "Regional carrier", "PA", (_iv("2022-01", None),)),
)

#: US-registered provider ASNs, for the sanctions-era departure analysis.
US_REGISTERED_PROVIDERS: frozenset[int] = frozenset(
    p.asn for p in CANTV_TRANSIT_INTERVALS if p.country == "US"
)

#: CANTV's transit customers: the domestic expansion after the 2007
#: nationalisation (academic institutions, banks, regional ISPs).
#: (asn, start, end-or-None)
_CANTV_CUSTOMERS: tuple[tuple[int, str, str | None], ...] = (
    (27717, "2004-03", None),          # university network
    (27718, "2005-06", None),          # government network
    (14317, "2006-02", "2015-08"),     # early cable ISP, later left
    (14318, "2007-09", None),
    (21826, "2008-01", None),          # Telemic / Inter
    (27889, "2008-07", None),          # Movilnet
    (26613, "2009-03", None),          # bank
    (26614, "2009-11", None),          # bank
    (52075, "2010-05", None),          # academic
    (52320, "2010-09", "2012-01"),     # briefly a customer before providing
    (263703, "2012-04", None),         # Viginet
    (264628, "2014-02", None),         # Fibex
    (264731, "2014-09", None),         # Digitel
    (61461, "2015-03", None),          # Airtek
    (265641, "2016-08", None),         # CIX Broadband
    (267809, "2017-05", None),         # 360NET
    (269738, "2018-02", None),         # Chircalnet
    (269832, "2019-06", None),         # MDS Telecom
    (269918, "2020-04", None),         # Telcorp
    (270042, "2021-01", None),         # Red Dot
    (272102, "2021-10", None),         # Besser Solutions
    (272809, "2022-05", None),         # Thundernet
    (273100, "2023-02", None),         # late regional ISP
)

#: A small static international backbone so the AS graph has realistic
#: structure above CANTV's providers: a tier-1 clique plus second-tier links.
_TIER1: tuple[int, ...] = (701, 1239, 1299, 3257, 3356, 6762, 7018, 2914, 6453)
_SECOND_TIER_UPLINKS: tuple[tuple[int, int], ...] = (
    # (provider, customer)
    (3356, 3549),
    (701, 4004),
    (1239, 7927),
    (7018, 19962),
    (6453, 23520),
    (2914, 5511),
    (12956, 52320),
    (6762, 12956),
    (3356, 28007),
    (6453, 262589),
)


#: Content provider interconnection: Google peers with the US backbone
#: carriers only; Meta peers with two and buys from a third; Netflix buys
#: transit.  These static edges are what make CANTV's valley-free paths to
#: content lengthen when its US transits depart (see repro.bgp.paths).
AS_GOOGLE = 15_169
AS_META = 32_934
AS_NETFLIX = 2_906
_CONTENT_PEERINGS: tuple[tuple[int, int], ...] = (
    (AS_GOOGLE, 701), (AS_GOOGLE, 1239), (AS_GOOGLE, 7018),
    (AS_GOOGLE, 3356), (AS_GOOGLE, 3549), (AS_GOOGLE, 2914),
    (AS_GOOGLE, 6453),
    (AS_META, 2914), (AS_META, 3356),
)
_CONTENT_UPLINKS: tuple[tuple[int, int], ...] = (
    # (provider, customer)
    (6453, AS_META),
    (3356, AS_NETFLIX),
    (2914, AS_NETFLIX),
)


def _tier1_mesh() -> list[Relationship]:
    rels = []
    for i, a in enumerate(_TIER1):
        for b in _TIER1[i + 1 :]:
            rels.append(Relationship(a, b, P2P))
    return rels


def _snapshot_for(month: Month, archive_end: Month) -> ASRelationshipSnapshot:
    """Build the AS-relationship snapshot for one month."""
    rels = _tier1_mesh()
    rels.extend(Relationship(p, c, P2C) for p, c in _SECOND_TIER_UPLINKS)
    rels.extend(Relationship(a, b, P2P) for a, b in _CONTENT_PEERINGS)
    rels.extend(Relationship(p, c, P2C) for p, c in _CONTENT_UPLINKS)
    for provider in CANTV_TRANSIT_INTERVALS:
        if provider.active_in(month, archive_end):
            rels.append(Relationship(provider.asn, AS_CANTV, P2C))
    for asn, start, end in _CANTV_CUSTOMERS:
        starts = Month.parse(start)
        ends = Month.parse(end) if end else archive_end
        if starts <= month <= ends:
            rels.append(Relationship(AS_CANTV, asn, P2C))
    # Telefonica de Venezuela homes to its parent's backbone throughout.
    rels.append(Relationship(12956, AS_TELEFONICA, P2C))
    rels.append(Relationship(23520, AS_TELEFONICA, P2C))
    return ASRelationshipSnapshot(rels)


def synthesize_asrel_archive(
    start: Month = Month(1998, 1), end: Month = Month(2023, 12)
) -> ASRelArchive:
    """Monthly AS-relationship archive with the scripted CANTV history."""
    snapshots = {m: _snapshot_for(m, end) for m in month_range(start, end)}
    get_registry().counter("bgp.asrel.rows_emitted").inc(
        sum(len(s) for s in snapshots.values())
    )
    return ASRelArchive(snapshots)


# ---------------------------------------------------------------------------
# prefix2as
# ---------------------------------------------------------------------------

#: Telefonica blocks announced as /17 more-specifics (the Fig. 14 rows).
_TEF_DEAGGREGATED = ("179.20.0.0/14", "179.44.0.0/14", "181.180.0.0/14",
                     "181.184.0.0/14", "161.255.0.0/16")
#: Telefonica blocks withdrawn in June 2016 and re-announced as covering
#: aggregates in June 2023 (Appendix C).
_TEF_WITHDRAWN = ("179.20.0.0/14", "179.44.0.0/14", "161.255.0.0/16")
_TEF_WITHDRAW_MONTH = Month(2016, 6)
_TEF_REANNOUNCE_MONTH = Month(2023, 6)


def _subnets_17(cidr: str) -> list[str]:
    """All /17 subnets of a block (the block itself if already /17+)."""
    network = ipaddress.ip_network(cidr)
    if network.prefixlen >= 17:
        return [str(network)]
    return [str(s) for s in network.subnets(new_prefix=17)]


def _announce_start(alloc: address_plan.Allocation) -> Month:
    """Blocks enter the routing table two months after allocation."""
    return Month(alloc.year, alloc.month).plus(2)


def _prefix2as_for(month: Month) -> Prefix2ASSnapshot:
    """Build the prefix2as snapshot for one month."""
    entries: list[OriginEntry] = []

    def add(cidr: str, asn: int) -> None:
        entries.append(OriginEntry(ipaddress.ip_network(cidr), (asn,)))

    # CANTV and the rest of the market announce covering aggregates.
    for alloc in address_plan.CANTV_ALLOCATIONS + address_plan.OTHER_VE_ALLOCATIONS:
        if _announce_start(alloc) <= month:
            add(alloc.prefix, alloc.asn)
    # CANTV also leaks a couple of more-specifics (exercises collapsing).
    if Month(2010, 1) <= month:
        add("200.44.32.0/19", AS_CANTV)
        add("186.88.0.0/16", AS_CANTV)

    for alloc in address_plan.TELEFONICA_ALLOCATIONS:
        if _announce_start(alloc) > month:
            continue
        if alloc.prefix in _TEF_DEAGGREGATED:
            withdrawn = (
                alloc.prefix in _TEF_WITHDRAWN
                and _TEF_WITHDRAW_MONTH <= month < _TEF_REANNOUNCE_MONTH
            )
            reannounced = (
                alloc.prefix in _TEF_WITHDRAWN and month >= _TEF_REANNOUNCE_MONTH
            )
            if withdrawn:
                continue
            if reannounced:
                add(alloc.prefix, AS_TELEFONICA)
            else:
                for subnet in _subnets_17(alloc.prefix):
                    add(subnet, AS_TELEFONICA)
        else:
            add(alloc.prefix, AS_TELEFONICA)
    # Telefonica's stable more-specifics inside 186.166.0.0/16 (Fig. 14 rows).
    if _announce_start(address_plan.TELEFONICA_ALLOCATIONS[11]) <= month:
        add("186.166.128.0/20", AS_TELEFONICA)
        add("186.166.144.0/20", AS_TELEFONICA)
    return Prefix2ASSnapshot(entries)


def synthesize_prefix2as_archive(
    start: Month = Month(2008, 1), end: Month = Month(2024, 1)
) -> Prefix2ASArchive:
    """Monthly prefix2as archive implementing the Fig. 2 / Fig. 14 scripts."""
    snapshots = {m: _prefix2as_for(m) for m in month_range(start, end)}
    get_registry().counter("bgp.prefix2as.rows_emitted").inc(
        sum(len(s) for s in snapshots.values())
    )
    return Prefix2ASArchive(snapshots)


def provider_name(asn: int) -> str:
    """Display name for a Fig. 9 provider ASN (falls back to ``ASxxxx``)."""
    for provider in CANTV_TRANSIT_INTERVALS:
        if provider.asn == asn:
            return provider.name
    return f"AS{asn}"
