"""CAIDA AS-relationship files (serial-1 text format).

The format is one relationship per line::

    # comment lines start with '#'
    <provider>|<customer>|-1        # provider-to-customer
    <peer>|<peer>|0                 # peer-to-peer

The paper retrieves these files from 1998 onward to track CANTV-AS8048's
upstream and downstream connectivity (Figs. 8 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest import Quarantine

#: Provider-to-customer relationship code.
P2C = -1
#: Peer-to-peer relationship code.
P2P = 0


class ASRelParseError(ValueError):
    """Raised when a serial-1 line cannot be parsed."""


@dataclass(frozen=True, slots=True)
class Relationship:
    """One AS-relationship edge.

    For ``kind == P2C``, ``a`` is the provider and ``b`` the customer.
    For ``kind == P2P``, the order of ``a`` and ``b`` is not meaningful.
    """

    a: int
    b: int
    kind: int

    def __post_init__(self) -> None:
        if self.kind not in (P2C, P2P):
            raise ValueError(f"unknown relationship kind: {self.kind}")

    def to_line(self) -> str:
        """Serialise back to the serial-1 wire form."""
        return f"{self.a}|{self.b}|{self.kind}"


@dataclass
class ASRelationshipSnapshot:
    """All relationships visible in one snapshot."""

    relationships: list[Relationship] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.relationships)

    # -- neighbour queries ------------------------------------------------

    def upstreams_of(self, asn: int) -> set[int]:
        """Providers of *asn* (ASes selling it transit)."""
        return {
            r.a for r in self.relationships if r.kind == P2C and r.b == asn
        }

    def downstreams_of(self, asn: int) -> set[int]:
        """Customers of *asn* (ASes buying transit from it)."""
        return {
            r.b for r in self.relationships if r.kind == P2C and r.a == asn
        }

    def peers_of(self, asn: int) -> set[int]:
        """Settlement-free peers of *asn*."""
        out: set[int] = set()
        for r in self.relationships:
            if r.kind != P2P:
                continue
            if r.a == asn:
                out.add(r.b)
            elif r.b == asn:
                out.add(r.a)
        return out

    def ases(self) -> set[int]:
        """Every AS appearing in the snapshot."""
        out: set[int] = set()
        for r in self.relationships:
            out.add(r.a)
            out.add(r.b)
        return out

    # -- serialisation ------------------------------------------------------

    def to_text(self) -> str:
        """Serialise as a serial-1 file with a provenance header."""
        lines = ["# synthetic AS relationships (repro)"]
        lines.extend(
            r.to_line()
            for r in sorted(self.relationships, key=lambda r: (r.a, r.b, r.kind))
        )
        return "\n".join(lines) + "\n"

    def save(self, path: Path | str) -> None:
        """Write the serial-1 form to *path*."""
        Path(path).write_text(self.to_text(), encoding="utf-8")


def parse_asrel(
    text: str,
    *,
    strict: bool = True,
    quarantine: "Quarantine | None" = None,
) -> ASRelationshipSnapshot:
    """Parse a serial-1 AS-relationship file.

    Args:
        text: The serial-1 file contents.
        strict: ``True`` (default) raises on the first malformed line;
            ``False`` quarantines malformed lines under an error budget
            (see :mod:`repro.ingest`).
        quarantine: Optional caller-owned quarantine (implies lenient
            parsing); a private one is created when ``strict=False``.

    Raises:
        ASRelParseError: on malformed lines (strict mode).
        repro.ingest.ErrorBudgetExceeded: too many malformed lines
            (lenient mode).
    """
    if quarantine is None and not strict:
        from repro.ingest import Quarantine

        quarantine = Quarantine("bgp.asrel")
    relationships: list[Relationship] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            fields = line.split("|")
            if len(fields) < 3:
                raise ASRelParseError(f"line {line_no}: expected a|b|rel: {line!r}")
            try:
                a, b, kind = int(fields[0]), int(fields[1]), int(fields[2])
            except ValueError:
                raise ASRelParseError(
                    f"line {line_no}: non-integer field: {line!r}"
                ) from None
            if kind not in (P2C, P2P):
                raise ASRelParseError(f"line {line_no}: bad relationship {kind}")
        except ASRelParseError as exc:
            if quarantine is None:
                raise
            quarantine.admit(line_no, raw, str(exc))
            continue
        relationships.append(Relationship(a, b, kind))
    if quarantine is not None:
        quarantine.check(len(relationships))
    get_registry().counter("bgp.asrel.rows_parsed").inc(len(relationships))
    return ASRelationshipSnapshot(relationships)


def build_snapshot(
    p2c: Iterable[tuple[int, int]] = (), p2p: Iterable[tuple[int, int]] = ()
) -> ASRelationshipSnapshot:
    """Convenience constructor from (provider, customer) and peer pairs."""
    rels = [Relationship(p, c, P2C) for p, c in p2c]
    rels.extend(Relationship(a, b, P2P) for a, b in p2p)
    return ASRelationshipSnapshot(rels)
