"""Valley-free AS path inference (Gao-Rexford routing).

Section 6 frames user experience as "partially dependent on the quality
of the path to the content".  This module computes policy-compliant AS
paths on a relationship snapshot: a valid path climbs customer-to-provider
edges, crosses at most one peer edge, then descends provider-to-customer
-- the standard valley-free model.

The headline use is longitudinal: CANTV's shortest valley-free path to
the content ASes lengthens as its US transits depart.
"""

from __future__ import annotations

from collections import deque

from repro.bgp.archive import ASRelArchive
from repro.bgp.graph import ASGraph
from repro.timeseries.series import MonthlySeries

#: Well-known content ASNs used by the synthetic topology.
AS_GOOGLE = 15_169
AS_META = 32_934
AS_NETFLIX = 2_906


def shortest_valley_free_length(graph: ASGraph, src: int, dst: int) -> int | None:
    """AS-hop count of the shortest valley-free path from *src* to *dst*.

    Returns the number of inter-AS hops (a direct relationship = 1), or
    None when no policy-compliant path exists.  States are (AS, phase)
    with phases up (0), peered (1) and down (2); allowed transitions are
    up->up, up->peer, up/peer/any->down and down->down.
    """
    if src == dst:
        return 0
    UP, PEER, DOWN = 0, 1, 2
    start = (src, UP)
    distances: dict[tuple[int, int], int] = {start: 0}
    queue: deque[tuple[int, int]] = deque([start])
    best: int | None = None
    while queue:
        state = queue.popleft()
        asn, phase = state
        distance = distances[state]
        if best is not None and distance >= best:
            continue
        neighbours: list[tuple[int, int]] = []
        if phase == UP:
            neighbours.extend((p, UP) for p in graph.providers(asn))
            neighbours.extend((p, PEER) for p in graph.peers(asn))
        if phase in (UP, PEER, DOWN):
            neighbours.extend((c, DOWN) for c in graph.customers(asn))
        for nxt in neighbours:
            if nxt in distances:
                continue
            distances[nxt] = distance + 1
            if nxt[0] == dst:
                candidate = distance + 1
                best = candidate if best is None else min(best, candidate)
            else:
                queue.append(nxt)
    return best


def path_length_series(archive: ASRelArchive, src: int, dst: int) -> MonthlySeries:
    """Shortest valley-free path length per month; unreachable months absent."""
    values = {}
    for month, snapshot in archive.items():
        length = shortest_valley_free_length(ASGraph(snapshot), src, dst)
        if length is not None:
            values[month] = float(length)
    return MonthlySeries(values)


def reachable_ases(graph: ASGraph, src: int) -> set[int]:
    """All ASes reachable from *src* over valley-free paths (excluding src)."""
    UP, PEER, DOWN = 0, 1, 2
    seen_states: set[tuple[int, int]] = {(src, UP)}
    reached: set[int] = set()
    queue: deque[tuple[int, int]] = deque([(src, UP)])
    while queue:
        asn, phase = queue.popleft()
        neighbours: list[tuple[int, int]] = []
        if phase == UP:
            neighbours.extend((p, UP) for p in graph.providers(asn))
            neighbours.extend((p, PEER) for p in graph.peers(asn))
        neighbours.extend((c, DOWN) for c in graph.customers(asn))
        for state in neighbours:
            if state in seen_states:
                continue
            seen_states.add(state)
            reached.add(state[0])
            queue.append(state)
    reached.discard(src)
    return reached
