"""BGP interdomain-topology substrate.

Implements the two CAIDA data products the paper's Section 4/6 analyses
consume, plus an AS-graph layer and the scripted synthetic histories:

* :mod:`repro.bgp.asrel` -- the AS-relationship *serial-1* text format
  (``<as1>|<as2>|<relationship>``) and per-snapshot neighbour queries.
* :mod:`repro.bgp.archive` -- monthly archives of snapshots with the
  longitudinal queries behind Fig. 8 (degree series) and Fig. 9 (transit
  provider heatmap).
* :mod:`repro.bgp.prefix2as` -- the RouteViews prefix-to-AS format, origin
  lookups, announced-address accounting and the visibility matrix behind
  Fig. 14.
* :mod:`repro.bgp.graph` -- customer-cone / provider-path queries.
* :mod:`repro.bgp.synthetic` -- the scripted CANTV and Telefonica
  histories calibrated to the paper.
"""

from repro.bgp.archive import ASRelArchive, Prefix2ASArchive
from repro.bgp.asrel import (
    P2C,
    P2P,
    ASRelationshipSnapshot,
    Relationship,
    parse_asrel,
)
from repro.bgp.graph import ASGraph
from repro.bgp.prefix2as import Prefix2ASSnapshot, parse_prefix2as
from repro.bgp.synthetic import (
    CANTV_TRANSIT_INTERVALS,
    synthesize_asrel_archive,
    synthesize_prefix2as_archive,
)

__all__ = [
    "ASGraph",
    "ASRelArchive",
    "ASRelationshipSnapshot",
    "CANTV_TRANSIT_INTERVALS",
    "P2C",
    "P2P",
    "Prefix2ASArchive",
    "Prefix2ASSnapshot",
    "Relationship",
    "parse_asrel",
    "parse_prefix2as",
    "synthesize_asrel_archive",
    "synthesize_prefix2as_archive",
]
