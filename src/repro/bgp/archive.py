"""Monthly archives of BGP snapshots and their longitudinal queries.

Two archive types wrap ``Month -> snapshot`` mappings:

* :class:`ASRelArchive` answers the Fig. 8 / Fig. 9 questions -- how many
  upstreams and downstreams an AS had per month, and which providers served
  it for more than N months.
* :class:`Prefix2ASArchive` answers the Fig. 2 / Fig. 14 questions --
  announced address space per origin over time, and per-prefix visibility.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, Iterator, Mapping

from repro.bgp.asrel import ASRelationshipSnapshot
from repro.bgp.prefix2as import Prefix2ASSnapshot
from repro.timeseries.month import Month
from repro.timeseries.series import MonthlySeries


class ASRelArchive:
    """Monthly AS-relationship snapshots."""

    def __init__(self, snapshots: Mapping[Month, ASRelationshipSnapshot]):
        self._snapshots = dict(snapshots)

    def months(self) -> list[Month]:
        """All snapshot months, ascending."""
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __getitem__(self, month: Month) -> ASRelationshipSnapshot:
        return self._snapshots[month]

    def __contains__(self, month: Month) -> bool:
        return month in self._snapshots

    def items(self) -> Iterator[tuple[Month, ASRelationshipSnapshot]]:
        """(month, snapshot) pairs in month order."""
        for m in self.months():
            yield m, self._snapshots[m]

    # -- Fig. 8: degree series -----------------------------------------------

    def upstream_count_series(self, asn: int) -> MonthlySeries:
        """Number of transit providers of *asn* per month."""
        return MonthlySeries(
            {m: float(len(s.upstreams_of(asn))) for m, s in self.items()}
        )

    def downstream_count_series(self, asn: int) -> MonthlySeries:
        """Number of transit customers of *asn* per month."""
        return MonthlySeries(
            {m: float(len(s.downstreams_of(asn))) for m, s in self.items()}
        )

    # -- Fig. 9: transit heatmap ------------------------------------------------

    def transit_matrix(self, asn: int) -> dict[int, set[Month]]:
        """For each provider that ever served *asn*, the months it did."""
        matrix: dict[int, set[Month]] = {}
        for month, snapshot in self.items():
            for provider in snapshot.upstreams_of(asn):
                matrix.setdefault(provider, set()).add(month)
        return matrix

    def providers_serving(self, asn: int, min_months: int = 1) -> list[int]:
        """Providers that served *asn* for at least *min_months* snapshots."""
        matrix = self.transit_matrix(asn)
        return sorted(p for p, months in matrix.items() if len(months) >= min_months)

    def provider_intervals(self, asn: int, provider: int) -> list[tuple[Month, Month]]:
        """Contiguous service intervals of *provider* for *asn*.

        Contiguity is relative to the archive's snapshot months: an interval
        breaks when a snapshot exists in which the provider is absent.
        """
        intervals: list[tuple[Month, Month]] = []
        run_start: Month | None = None
        prev: Month | None = None
        for month, snapshot in self.items():
            if provider in snapshot.upstreams_of(asn):
                if run_start is None:
                    run_start = month
                prev = month
            else:
                if run_start is not None and prev is not None:
                    intervals.append((run_start, prev))
                run_start = None
        if run_start is not None and prev is not None:
            intervals.append((run_start, prev))
        return intervals


class Prefix2ASArchive:
    """Monthly prefix-to-AS snapshots."""

    def __init__(self, snapshots: Mapping[Month, Prefix2ASSnapshot]):
        self._snapshots = dict(snapshots)

    def months(self) -> list[Month]:
        """All snapshot months, ascending."""
        return sorted(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __getitem__(self, month: Month) -> Prefix2ASSnapshot:
        return self._snapshots[month]

    def items(self) -> Iterator[tuple[Month, Prefix2ASSnapshot]]:
        """(month, snapshot) pairs in month order."""
        for m in self.months():
            yield m, self._snapshots[m]

    # -- Fig. 2: announced space -------------------------------------------------

    def announced_series(self, asn: int) -> MonthlySeries:
        """Announced (collapsed) address count of *asn* per month."""
        return MonthlySeries(
            {m: float(s.announced_addresses(asn)) for m, s in self.items()}
        )

    # -- Fig. 14: visibility matrix ------------------------------------------------

    def visibility_matrix(
        self, asn: int, prefixes: Iterable[str] | None = None
    ) -> dict[str, set[Month]]:
        """Months each prefix of *asn* was routed.

        Args:
            asn: Origin AS whose prefixes are tracked.
            prefixes: Optional explicit prefix list (CIDR strings).  When
                omitted, every prefix the AS ever originated in the archive
                is tracked.
        """
        if prefixes is None:
            wanted: set[ipaddress.IPv4Network] = set()
            for _m, snapshot in self.items():
                wanted.update(snapshot.prefixes_of(asn))
        else:
            wanted = {ipaddress.ip_network(p) for p in prefixes}
        matrix: dict[str, set[Month]] = {str(net): set() for net in wanted}
        for month, snapshot in self.items():
            routed = set(snapshot.prefixes_of(asn))
            for net in wanted:
                if net in routed:
                    matrix[str(net)].add(month)
        return matrix
