"""Interdomain resilience and market-structure metrics.

Quantifies two claims the paper makes qualitatively: that Venezuela's
ecosystem is "concentrated ... dominated by CANTV", and that CANTV's
domestic transit expansion created a single point of failure for much of
the country.

* :func:`market_hhi` -- the Herfindahl-Hirschman concentration index of a
  country's eyeball market.
* :func:`transit_dependence` -- the share of a country's users in ASes
  whose every path to the transit-free clique crosses a given AS.
* :func:`single_homed_share` -- the share of users behind single-homed
  ASes.
"""

from __future__ import annotations

from repro.apnic.model import APNICEstimates
from repro.bgp.graph import ASGraph


def market_hhi(estimates: APNICEstimates, country: str) -> float:
    """Herfindahl-Hirschman index of a country's eyeball market.

    Computed over market shares expressed as fractions, so the index lies
    in (0, 1]; 1.0 is a pure monopoly.  Regulators' usual thresholds map
    to 0.15 (moderately concentrated) and 0.25 (highly concentrated).
    """
    entries = estimates.country_entries(country)
    total = sum(e.users for e in entries)
    if total == 0:
        raise ValueError(f"no population data for {country!r}")
    return sum((e.users / total) ** 2 for e in entries)


def depends_on(graph: ASGraph, asn: int, chokepoint: int, max_depth: int = 10) -> bool:
    """Whether every provider path of *asn* crosses *chokepoint*.

    An AS trivially depends on itself.  ASes with no providers at all
    (no visible transit) depend on nothing but themselves.
    """
    if asn == chokepoint:
        return True
    paths = graph.provider_paths_to_clique(asn, max_depth=max_depth)
    if not paths or paths == [[asn]]:
        return False
    return all(chokepoint in path for path in paths)


def transit_dependence(
    graph: ASGraph,
    estimates: APNICEstimates,
    country: str,
    chokepoint: int,
) -> float:
    """Share of *country*'s users fully dependent on *chokepoint*.

    A user counts as dependent when its access network either is the
    chokepoint or reaches the global Internet only through it.
    """
    cc = country.upper()
    dependent = [
        e.asn
        for e in estimates.country_entries(cc)
        if depends_on(graph, e.asn, chokepoint)
    ]
    return estimates.share_of_group(dependent, cc)


def single_homed_share(
    graph: ASGraph, estimates: APNICEstimates, country: str
) -> float:
    """Share of *country*'s users behind ASes with exactly one provider."""
    cc = country.upper()
    single = [
        e.asn
        for e in estimates.country_entries(cc)
        if len(graph.providers(e.asn)) == 1
    ]
    return estimates.share_of_group(single, cc)
