"""Multi-collector BGP visibility.

The paper speaks of prefixes "visible on BGP collectors": real pipelines
combine several vantage points (RouteViews and RIS collectors) because a
single collector's view is partial.  This module models that: a set of
named collectors, each holding its own prefix table, and visibility
queries that require a prefix to be seen by at least *k* collectors.

The synthetic view derives per-collector tables from a base snapshot with
deterministic per-collector dropouts (distant collectors miss more), which
is what the quorum ablation benchmark sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import ipaddress

from repro.bgp.prefix2as import OriginEntry, Prefix2ASSnapshot


@dataclass(frozen=True, slots=True)
class Collector:
    """One route collector.

    Attributes:
        name: Collector identifier (e.g. ``"route-views2"``).
        country: Hosting country.
        miss_rate: Fraction of prefixes this collector fails to observe
            (path filtering, session resets, distance from the origin).
    """

    name: str
    country: str
    miss_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate < 1.0:
            raise ValueError(f"miss rate out of range: {self.miss_rate}")


#: The default collector fleet, miss rates growing with distance from
#: Latin America.
DEFAULT_COLLECTORS: tuple[Collector, ...] = (
    Collector("saopaulo", "BR", 0.02),
    Collector("route-views2", "US", 0.05),
    Collector("eqix-ashburn", "US", 0.06),
    Collector("rrc00-amsterdam", "NL", 0.10),
    Collector("rrc06-otemachi", "JP", 0.14),
)


def _stable_hash(text: str) -> int:
    acc = 0
    for ch in text:
        acc = (acc * 131 + ord(ch)) % 1_000_003
    return acc


class MultiCollectorView:
    """Per-collector prefix tables with quorum visibility queries."""

    def __init__(self, tables: Mapping[str, Prefix2ASSnapshot]):
        if not tables:
            raise ValueError("need at least one collector table")
        self._tables = dict(tables)

    @classmethod
    def from_base_snapshot(
        cls,
        base: Prefix2ASSnapshot,
        collectors: Iterable[Collector] = DEFAULT_COLLECTORS,
    ) -> "MultiCollectorView":
        """Derive per-collector tables with deterministic dropouts."""
        tables: dict[str, Prefix2ASSnapshot] = {}
        for collector in collectors:
            entries = []
            for entry in base.entries:
                token = f"{collector.name}|{entry.network}"
                if _stable_hash(token) / 1_000_003 >= collector.miss_rate:
                    entries.append(OriginEntry(entry.network, entry.origins))
            tables[collector.name] = Prefix2ASSnapshot(entries)
        return cls(tables)

    def collectors(self) -> list[str]:
        """All collector names, sorted."""
        return sorted(self._tables)

    def table(self, name: str) -> Prefix2ASSnapshot:
        """One collector's prefix table."""
        return self._tables[name]

    def seen_by(self, cidr: str) -> list[str]:
        """Collectors observing an exact prefix."""
        network = ipaddress.ip_network(cidr)
        return sorted(
            name
            for name, table in self._tables.items()
            if network in table.routed_prefixes()
        )

    def visibility(self, cidr: str) -> float:
        """Fraction of collectors observing the prefix."""
        return len(self.seen_by(cidr)) / len(self._tables)

    def visible_prefixes(self, min_collectors: int = 1) -> set[ipaddress.IPv4Network]:
        """Prefixes seen by at least *min_collectors* collectors."""
        if min_collectors < 1:
            raise ValueError("min_collectors must be >= 1")
        counts: dict[ipaddress.IPv4Network, int] = {}
        for table in self._tables.values():
            for network in table.routed_prefixes():
                counts[network] = counts.get(network, 0) + 1
        return {net for net, count in counts.items() if count >= min_collectors}

    def announced_addresses(self, asn: int, min_collectors: int = 1) -> int:
        """Quorum-filtered announced address count for one origin.

        A prefix contributes only when at least *min_collectors*
        collectors see it originated by *asn*; overlaps are collapsed.
        """
        counts: dict[ipaddress.IPv4Network, int] = {}
        for table in self._tables.values():
            for network in table.prefixes_of(asn):
                counts[network] = counts.get(network, 0) + 1
        accepted = [n for n, c in counts.items() if c >= min_collectors]
        collapsed = ipaddress.collapse_addresses(accepted)
        return sum(net.num_addresses for net in collapsed)
