"""Sanctions-era transit geography (quantifying the Fig. 9 narrative).

The paper reads the provider heatmap qualitatively: US carriers leave
between 2013 and 2018 until only Columbus Networks remains.  This module
computes that as a time series -- the share and count of an AS's transit
providers registered in each country -- using the provider nationality
table from the synthetic roster (or any caller-supplied mapping).
"""

from __future__ import annotations

from typing import Mapping

from repro.bgp.archive import ASRelArchive
from repro.bgp.synthetic import CANTV_TRANSIT_INTERVALS
from repro.timeseries.series import MonthlySeries

#: Default provider-ASN -> registration country mapping (the Fig. 9 roster).
PROVIDER_COUNTRIES: dict[int, str] = {
    p.asn: p.country for p in CANTV_TRANSIT_INTERVALS
}


def provider_country_counts(
    archive: ASRelArchive,
    asn: int,
    nationalities: Mapping[int, str] | None = None,
) -> dict[str, MonthlySeries]:
    """Per-country transit-provider counts of *asn* over time.

    Providers absent from *nationalities* are grouped under ``"??"``.
    """
    table = PROVIDER_COUNTRIES if nationalities is None else nationalities
    acc: dict[str, dict] = {}
    for month, snapshot in archive.items():
        for provider in snapshot.upstreams_of(asn):
            cc = table.get(provider, "??")
            acc.setdefault(cc, {})[month] = acc.get(cc, {}).get(month, 0.0) + 1.0
    return {cc: MonthlySeries(values) for cc, values in acc.items()}


def us_transit_share_series(
    archive: ASRelArchive,
    asn: int,
    nationalities: Mapping[int, str] | None = None,
) -> MonthlySeries:
    """Fraction of *asn*'s transit providers registered in the US.

    Months in which the AS has no providers at all are absent.
    """
    table = PROVIDER_COUNTRIES if nationalities is None else nationalities
    values = {}
    for month, snapshot in archive.items():
        providers = snapshot.upstreams_of(asn)
        if not providers:
            continue
        us = sum(1 for p in providers if table.get(p) == "US")
        values[month] = us / len(providers)
    return MonthlySeries(values)


def departures_by_year(
    archive: ASRelArchive,
    asn: int,
    country: str,
    nationalities: Mapping[int, str] | None = None,
) -> dict[int, list[int]]:
    """Providers of one nationality, grouped by the year they stop serving.

    Providers still active in the archive's final month are excluded --
    they have not departed.
    """
    table = PROVIDER_COUNTRIES if nationalities is None else nationalities
    cc = country.upper()
    final_month = archive.months()[-1]
    out: dict[int, list[int]] = {}
    for provider in archive.providers_serving(asn):
        if table.get(provider) != cc:
            continue
        intervals = archive.provider_intervals(asn, provider)
        last = intervals[-1][1]
        if last == final_month:
            continue
        out.setdefault(last.year, []).append(provider)
    return {year: sorted(providers) for year, providers in sorted(out.items())}
