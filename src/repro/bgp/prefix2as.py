"""RouteViews prefix-to-AS mappings.

The wire format is tab-separated: ``<network address>\\t<prefix length>\\t
<origin>`` where origin is an ASN, an underscore-joined multi-origin set
(``8048_6306``), or a comma-joined AS-set.  The paper uses monthly
snapshots of these files to measure announced address space per origin AS
(Fig. 2) and the visibility of individual prefixes (Fig. 14 / Appendix C).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest import Quarantine


class Prefix2ASParseError(ValueError):
    """Raised when a prefix2as line cannot be parsed."""


@dataclass(frozen=True, slots=True)
class OriginEntry:
    """One routed prefix and its origin ASes."""

    network: ipaddress.IPv4Network
    origins: tuple[int, ...]

    def to_line(self) -> str:
        """Serialise to the RouteViews tab-separated wire form."""
        origin = "_".join(str(a) for a in self.origins)
        return f"{self.network.network_address}\t{self.network.prefixlen}\t{origin}"


@dataclass
class Prefix2ASSnapshot:
    """All routed prefixes in one snapshot."""

    entries: list[OriginEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, int]]) -> "Prefix2ASSnapshot":
        """Build from (cidr string, origin asn) pairs."""
        return cls(
            [
                OriginEntry(ipaddress.ip_network(cidr), (asn,))
                for cidr, asn in pairs
            ]
        )

    # -- queries -----------------------------------------------------------

    def prefixes_of(self, asn: int) -> list[ipaddress.IPv4Network]:
        """All prefixes originated (possibly jointly) by *asn*."""
        return [e.network for e in self.entries if asn in e.origins]

    def origins_of(self, cidr: str) -> tuple[int, ...]:
        """Origins of an exact prefix, or () when it is not routed."""
        network = ipaddress.ip_network(cidr)
        for entry in self.entries:
            if entry.network == network:
                return entry.origins
        return ()

    def longest_match(self, address: str) -> OriginEntry | None:
        """Longest-prefix-match lookup for one IPv4 address."""
        ip = ipaddress.ip_address(address)
        best: OriginEntry | None = None
        for entry in self.entries:
            if ip in entry.network:
                if best is None or entry.network.prefixlen > best.network.prefixlen:
                    best = entry
        return best

    def announced_addresses(self, asn: int) -> int:
        """Distinct addresses announced by *asn*, overlaps collapsed.

        A network often announces both a covering aggregate and more
        specific subnets; counting naively would double-count, so prefixes
        are collapsed before summing.
        """
        collapsed = ipaddress.collapse_addresses(self.prefixes_of(asn))
        return sum(net.num_addresses for net in collapsed)

    def routed_prefixes(self) -> set[ipaddress.IPv4Network]:
        """The set of all routed prefixes in the snapshot."""
        return {e.network for e in self.entries}

    # -- serialisation ------------------------------------------------------

    def to_text(self) -> str:
        """Serialise in RouteViews order (by network, then length)."""
        ordered = sorted(
            self.entries, key=lambda e: (int(e.network.network_address), e.network.prefixlen)
        )
        return "\n".join(e.to_line() for e in ordered) + "\n"

    def save(self, path: Path | str) -> None:
        """Write the wire form to *path*."""
        Path(path).write_text(self.to_text(), encoding="utf-8")


def parse_prefix2as(
    text: str,
    *,
    strict: bool = True,
    quarantine: "Quarantine | None" = None,
) -> Prefix2ASSnapshot:
    """Parse the RouteViews tab-separated prefix2as format.

    Accepts underscore-joined multi-origin sets and comma-joined AS-sets;
    both are normalised into the entry's ``origins`` tuple.

    Args:
        text: The prefix2as file contents.
        strict: ``True`` (default) raises on the first malformed line;
            ``False`` quarantines malformed lines under an error budget.
        quarantine: Optional caller-owned quarantine (implies lenient
            parsing); a private one is created when ``strict=False``.

    Raises:
        Prefix2ASParseError: on malformed lines (strict mode).
        repro.ingest.ErrorBudgetExceeded: too many malformed lines
            (lenient mode).
    """
    if quarantine is None and not strict:
        from repro.ingest import Quarantine

        quarantine = Quarantine("bgp.prefix2as")
    entries: list[OriginEntry] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            fields = line.split("\t")
            if len(fields) != 3:
                raise Prefix2ASParseError(
                    f"line {line_no}: expected 3 fields: {line!r}"
                )
            address, length, origin = fields
            try:
                network = ipaddress.ip_network(f"{address}/{int(length)}")
            except ValueError as exc:
                raise Prefix2ASParseError(f"line {line_no}: {exc}") from None
            try:
                origins = tuple(
                    int(part)
                    for chunk in origin.split("_")
                    for part in chunk.split(",")
                )
            except ValueError:
                raise Prefix2ASParseError(
                    f"line {line_no}: bad origin {origin!r}"
                ) from None
            if not origins:
                raise Prefix2ASParseError(f"line {line_no}: empty origin")
        except Prefix2ASParseError as exc:
            if quarantine is None:
                raise
            quarantine.admit(line_no, raw, str(exc))
            continue
        entries.append(OriginEntry(network, origins))
    if quarantine is not None:
        quarantine.check(len(entries))
    get_registry().counter("bgp.prefix2as.rows_parsed").inc(len(entries))
    return Prefix2ASSnapshot(entries)
