"""AS-graph queries over one relationship snapshot.

Customer cones are the standard measure of a transit provider's market
footprint; the paper's Section 6 narrative ("CANTV significantly expanded
its presence in the domestic transit market") is quantified here.
"""

from __future__ import annotations

from repro.bgp.asrel import ASRelationshipSnapshot


class ASGraph:
    """Adjacency-indexed view of an AS-relationship snapshot."""

    def __init__(self, snapshot: ASRelationshipSnapshot):
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        for rel in snapshot.relationships:
            if rel.kind == -1:
                self._customers.setdefault(rel.a, set()).add(rel.b)
                self._providers.setdefault(rel.b, set()).add(rel.a)
            else:
                self._peers.setdefault(rel.a, set()).add(rel.b)
                self._peers.setdefault(rel.b, set()).add(rel.a)

    def providers(self, asn: int) -> set[int]:
        """Direct transit providers of *asn*."""
        return set(self._providers.get(asn, ()))

    def customers(self, asn: int) -> set[int]:
        """Direct transit customers of *asn*."""
        return set(self._customers.get(asn, ()))

    def peers(self, asn: int) -> set[int]:
        """Settlement-free peers of *asn*."""
        return set(self._peers.get(asn, ()))

    def ases(self) -> set[int]:
        """All ASes with at least one edge."""
        out: set[int] = set()
        out.update(self._providers, self._customers, self._peers)
        return out

    def customer_cone(self, asn: int) -> set[int]:
        """All ASes reachable from *asn* by only following p2c edges down.

        The cone includes *asn* itself, matching CAIDA's convention.  Cycles
        (which appear in inferred data) are handled by the visited set.
        """
        cone: set[int] = set()
        stack = [asn]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(self._customers.get(current, ()))
        return cone

    def is_transit_free(self, asn: int) -> bool:
        """True when *asn* has no providers (a tier-1 candidate)."""
        return not self._providers.get(asn)

    def provider_paths_to_clique(self, asn: int, max_depth: int = 10) -> list[list[int]]:
        """All provider chains from *asn* up to transit-free ASes.

        Returns paths as lists starting at *asn* and ending at a
        transit-free AS, bounded by *max_depth* to defuse inference cycles.
        """
        paths: list[list[int]] = []

        def walk(path: list[int]) -> None:
            current = path[-1]
            ups = self._providers.get(current, set())
            if not ups:
                paths.append(list(path))
                return
            if len(path) > max_depth:
                return
            for up in sorted(ups):
                if up not in path:
                    path.append(up)
                    walk(path)
                    path.pop()

        walk([asn])
        return paths
