"""repro.serve: a concurrent HTTP API over the paper pipeline.

Turns the one-shot CLI into a long-lived service (stdlib only).  Two
engines share one routing/envelope/artifact substrate: the original
threaded engine (``http.server.ThreadingHTTPServer``) and the asyncio
engine (:mod:`repro.serve.aio`), which serves a precomputed, sealed
:class:`~repro.serve.artifacts.ArtifactStore` at 10k+ req/s on one
core.  The pieces, smallest first:

* :mod:`repro.serve.router` -- the route table, typed path parameters,
  and the uniform ``{"data": ...}`` / ``{"error": ...}`` JSON envelopes
  with deterministic serialisation and strong ETags.
* :mod:`repro.serve.pool` -- :class:`ScenarioPool`: one warm
  :class:`~repro.core.scenario.Scenario` per parameter set shared across
  request threads, with single-flight deduplication so N concurrent cold
  requests trigger exactly one ``build_all``.
* :mod:`repro.serve.respcache` -- :class:`ResponseCache`: an in-memory
  LRU of rendered responses keyed by (scenario params, endpoint, args),
  bounded by entries and bytes; every replay is byte-identical and
  ``If-None-Match`` revalidates to 304.
* :mod:`repro.serve.artifacts` -- :class:`ArtifactStore`: the whole
  static response surface pre-rendered at pool-build time,
  content-addressed (strong SHA-256 ETags) and sealed immutable.
* :mod:`repro.serve.server` / :mod:`repro.serve.handlers` -- the
  threaded HTTP plumbing, graceful SIGTERM drain, and the endpoint
  implementations: ``/healthz``, ``/metrics``, ``/v1/slo``,
  ``/v1/exhibits``, ``/v1/exhibit/<id>``, ``/v1/report``,
  ``/v1/narrative``, ``/v1/scorecard/<cc>``.
* :mod:`repro.serve.aio` -- the asyncio front end: keep-alive HTTP/1.1,
  zero-copy writes of sealed artifacts, optional pre-forked
  ``SO_REUSEPORT`` workers, identical bytes to the threaded engine.

Entry points: ``python -m repro serve [--engine asyncio|threaded]``
(CLI) or, embedded::

    from repro.serve import create_server, run

    server = create_server(port=8321, jobs=4, prebuild=True)
    run(server)        # serves until SIGTERM/SIGINT, then drains

    from repro.serve import create_aio_server, run_aio

    run_aio(create_aio_server(port=8321, jobs=4))   # artifact plane

See ``docs/SERVING.md`` for endpoint shapes, caching semantics, and
tuning guidance.
"""

from repro.serve.aio import AioReproServer, create_aio_server, run_aio, run_workers
from repro.serve.artifacts import Artifact, ArtifactStore, build_artifact_store
from repro.serve.breaker import BreakerOpenError, CircuitBreaker
from repro.serve.deadline import DeadlineExpired, deadline_scope
from repro.serve.handlers import ServeContext, build_router
from repro.serve.pool import PoolTimeoutError, ScenarioPool, params_key
from repro.serve.respcache import CachedResponse, ResponseCache
from repro.serve.router import (
    HTTPError,
    RawResponse,
    Route,
    Router,
    envelope_bytes,
    error_bytes,
    etag_for,
    etag_matches,
    to_json_bytes,
)
from repro.serve.server import ReproServer, create_server, run

__all__ = [
    "AioReproServer",
    "Artifact",
    "ArtifactStore",
    "BreakerOpenError",
    "CachedResponse",
    "CircuitBreaker",
    "DeadlineExpired",
    "HTTPError",
    "PoolTimeoutError",
    "RawResponse",
    "ReproServer",
    "Route",
    "Router",
    "ScenarioPool",
    "ServeContext",
    "ResponseCache",
    "build_artifact_store",
    "build_router",
    "create_aio_server",
    "create_server",
    "deadline_scope",
    "envelope_bytes",
    "error_bytes",
    "etag_for",
    "etag_matches",
    "params_key",
    "run",
    "run_aio",
    "run_workers",
    "to_json_bytes",
]
