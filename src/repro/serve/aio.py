"""The asyncio front end: zero-copy serving of the sealed artifact plane.

One event loop, one ``asyncio.Protocol`` per connection, HTTP/1.1 with
keep-alive.  At server construction every
:class:`~repro.serve.artifacts.Artifact` is compiled into two immutable
wire images — the full ``200`` (status line + headers + body) and the
``304 Not Modified`` revalidation — so the static hot path per request
is: find the header terminator, read the request line, one dict lookup,
one ``transport.write`` of a sealed :class:`memoryview`.  No rendering,
no locks, no per-request allocation beyond the parse.  That is what
moves the serving ceiling from ~188 req/s (threaded engine, per-request
render/cache machinery) to 10k+ req/s on one core.

Only genuinely dynamic endpoints — ``/healthz``, ``/metrics``,
``/v1/slo`` — plus error envelopes and case-folded artifact lookups go
through the live dispatch path; those run on a small thread pool so a
slow handler can never stall the event loop, and they carry the same
hardening as the threaded engine: per-request deadlines, max-inflight
shedding with 503 + ``Retry-After`` (health endpoints exempt), circuit
breaker and pool timeouts surfacing as 503s.

Shutdown is graceful: SIGTERM/SIGINT stop the accept loop, idle
keep-alive connections are closed, and every request already received is
answered before the process exits — ``transport.close()`` flushes
buffered responses, and in-flight dynamic handlers finish before their
connections close.

Multi-worker mode (``--workers N``) pre-forks after the artifact plane
is built (workers share it copy-on-write) and binds one listening
socket per worker with ``SO_REUSEPORT`` so the kernel load-balances
accepts; without ``SO_REUSEPORT`` the workers share the parent's
socket instead.

Observability (batched, so instruments never dominate the hot path):
``serve.requests`` and ``serve.artifact.hit`` are flushed every
:data:`_FLUSH_EVERY` requests and on disconnect; the
``serve.request.artifact`` timer samples one static request in
:data:`_TIMER_SAMPLE`; dynamic requests record the same per-endpoint
``serve.request.<name>`` timers and error counters as the threaded
engine.  Static responses do not carry per-request ``X-Request-Id`` /
``traceparent`` headers (they are pre-sealed bytes); dynamic responses
do.
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.core.degrade import DatasetDegradedError
from repro.obs import (
    get_logger,
    get_registry,
    start_request_context,
    use_context,
)
from repro.serve.artifacts import Artifact, ArtifactStore
from repro.serve.breaker import BreakerOpenError
from repro.serve.deadline import DeadlineExpired, deadline_scope
from repro.serve.handlers import build_router
from repro.serve.pool import PoolTimeoutError
from repro.serve.router import (
    JSON_CONTENT_TYPE,
    HTTPError,
    RawResponse,
    Router,
    envelope_bytes,
    error_bytes,
    etag_matches,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.handlers import ServeContext

_LOG = get_logger("repro.serve.aio")

#: Batched counters flush to the registry every this many static hits.
_FLUSH_EVERY = 256
#: One static request in this many lands in the serve.request.artifact
#: timer (sampling keeps the hot path free of clock reads).
_TIMER_SAMPLE = 64

_REASONS = {
    200: "OK", 304: "Not Modified", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}

#: Endpoints exempt from load shedding (mirrors the threaded engine).
_SHED_EXEMPT = ("healthz", "metrics")


def _reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


class _Wire:
    """One artifact compiled to immutable wire images."""

    __slots__ = ("full", "not_modified", "etag")

    def __init__(self, artifact: Artifact) -> None:
        head = (
            f"HTTP/1.1 200 OK\r\n"
            f"Content-Type: {artifact.content_type}\r\n"
            f"Content-Length: {len(artifact.body)}\r\n"
            f"ETag: {artifact.etag}\r\n"
            f"\r\n"
        ).encode("latin-1")
        self.full = memoryview(head + artifact.body)
        self.not_modified = memoryview(
            f"HTTP/1.1 304 Not Modified\r\nETag: {artifact.etag}\r\n\r\n".encode(
                "latin-1"
            )
        )
        self.etag = artifact.etag


def _response_bytes(
    status: int,
    body: bytes,
    content_type: str,
    etag: str | None,
    extra_headers: dict[str, str] | None,
    trace_headers: dict[str, str],
    close: bool,
) -> bytes:
    """A dynamically assembled HTTP/1.1 response."""
    lines = [f"HTTP/1.1 {status} {_reason(status)}"]
    if status != 304:
        lines.append(f"Content-Type: {content_type}")
        lines.append(f"Content-Length: {len(body)}")
    if etag is not None:
        lines.append(f"ETag: {etag}")
    for name, value in trace_headers.items():
        lines.append(f"{name}: {value}")
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    if close:
        lines.append("Connection: close")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head if status == 304 else head + body


def _header_value(lower_blob: bytes, name: bytes) -> str | None:
    """The value of header *name* (lower-case) in a lower-cased blob."""
    needle = name + b":"
    start = lower_blob.find(needle)
    while start > 0 and lower_blob[start - 1 : start] != b"\n":
        start = lower_blob.find(needle, start + 1)
    if start < 0:
        return None
    end = lower_blob.find(b"\r\n", start)
    if end < 0:
        end = len(lower_blob)
    return lower_blob[start + len(needle) : end].strip().decode("latin-1")


class _AioProtocol(asyncio.Protocol):
    """Per-connection HTTP/1.1 state machine over the sealed wire table."""

    __slots__ = (
        "server", "transport", "_buf", "_busy", "_skip", "_close_after",
        "_draining", "_n_static", "_n_304", "_sample",
    )

    def __init__(self, server: "AioReproServer") -> None:
        self.server = server
        self.transport: asyncio.Transport | None = None
        self._buf = b""
        self._busy = False          # a dynamic request is in flight
        self._skip = 0              # request-body bytes left to discard
        self._close_after = False   # close once the current write flushes
        self._draining = False
        self._n_static = 0          # batched serve.requests delta
        self._n_304 = 0             # batched serve.response.not_modified delta
        self._sample = 0

    # -- connection lifecycle ------------------------------------------------

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        self.server._connections.add(self)
        if self.server._draining:
            transport.close()  # refuse late connections during drain

    def connection_lost(self, exc: Exception | None) -> None:
        self._flush_counters()
        self.server._connections.discard(self)
        self.server._check_drained()

    def _flush_counters(self) -> None:
        if self._n_static:
            registry = get_registry()
            registry.counter("serve.requests").inc(self._n_static)
            registry.counter("serve.artifact.hit").inc(self._n_static)
            if self._n_304:
                registry.counter("serve.response.not_modified").inc(self._n_304)
            self._n_static = 0
            self._n_304 = 0

    # -- request parsing -----------------------------------------------------

    def data_received(self, data: bytes) -> None:
        buf = self._buf + data if self._buf else data
        if self._busy:
            # A dynamic response is pending; preserve ordering by
            # buffering pipelined requests until it completes.
            self._buf = buf
            return
        self._process(buf)

    def _process(self, buf: bytes) -> None:
        transport = self.transport
        assert transport is not None
        wire = self.server._wire
        out: list[bytes | memoryview] = []
        sampling_t0 = 0.0
        while True:
            if self._skip:
                if len(buf) <= self._skip:
                    self._skip -= len(buf)
                    buf = b""
                    break
                buf = buf[self._skip :]
                self._skip = 0
            end = buf.find(b"\r\n\r\n")
            if end < 0:
                if len(buf) > 65536:  # oversized header block: refuse
                    out.append(
                        _response_bytes(
                            400, error_bytes(400, "header block too large"),
                            JSON_CONTENT_TYPE, None, None, {}, close=True,
                        )
                    )
                    self._close_after = True
                    buf = b""
                break
            head = buf[:end]
            buf = buf[end + 4 :]
            line_end = head.find(b"\r\n")
            request_line = head if line_end < 0 else head[:line_end]
            headers_blob = b"" if line_end < 0 else head[line_end + 2 :]
            parts = request_line.split(b" ")
            if len(parts) != 3:
                out.append(
                    _response_bytes(
                        400, error_bytes(400, "malformed request line"),
                        JSON_CONTENT_TYPE, None, None, {}, close=True,
                    )
                )
                self._close_after = True
                break
            method, target, version = parts
            q = target.find(b"?")
            path = target[:q] if q >= 0 else target

            entry = wire.get(path) if method == b"GET" else None
            lower = headers_blob.lower()
            length = _header_value(lower, b"content-length")
            if length is not None and length.isdigit():
                self._skip = int(length)
            wants_close = (
                version == b"HTTP/1.0"
                and b"connection: keep-alive" not in lower
            ) or b"connection: close" in lower

            if entry is not None:
                # The static plane: sealed bytes, no handler, no locks.
                self._sample += 1
                if self._sample >= _TIMER_SAMPLE:
                    self._sample = 0
                    sampling_t0 = time.perf_counter()
                self._n_static += 1
                inm = (
                    _header_value(lower, b"if-none-match")
                    if b"if-none-match" in lower
                    else None
                )
                if inm is not None and etag_matches(inm, entry.etag):
                    self._n_304 += 1
                    out.append(entry.not_modified)
                else:
                    out.append(entry.full)
                if sampling_t0:
                    transport.writelines(out)
                    out = []
                    get_registry().timer("serve.request.artifact").observe(
                        time.perf_counter() - sampling_t0
                    )
                    sampling_t0 = 0.0
                if wants_close:
                    self._close_after = True
                    break
                continue

            # Dynamic dispatch: flush what we have, keep ordering by
            # parking the rest of the buffer until the handler answers.
            self._buf = buf
            if out:
                transport.writelines(out)
            self._busy = True
            task = self.server._loop.create_task(
                self._run_dynamic(method, path, headers_blob, lower, wants_close)
            )
            self.server._track(task)
            return

        self._buf = buf
        if out:
            transport.writelines(out)
        if self._n_static >= _FLUSH_EVERY:
            self._flush_counters()
        if self._close_after or (self._draining and not self._buf):
            transport.close()

    # -- dynamic path --------------------------------------------------------

    async def _run_dynamic(
        self,
        method: bytes,
        path: bytes,
        headers_blob: bytes,
        lower: bytes,
        wants_close: bool,
    ) -> None:
        transport = self.transport
        try:
            payload = await self.server.dispatch_dynamic(
                method.decode("latin-1"),
                path.decode("latin-1"),
                headers_blob,
                lower,
                close=wants_close,
            )
            if transport is not None and not transport.is_closing():
                transport.write(payload)
        finally:
            self._busy = False
            if wants_close:
                self._close_after = True
            if transport is not None and not transport.is_closing():
                if self._close_after:
                    transport.close()
                elif self._draining and not self._buf:
                    transport.close()
                elif self._buf:
                    buf, self._buf = self._buf, b""
                    self._process(buf)

    # -- drain ---------------------------------------------------------------

    def start_draining(self) -> None:
        """Answer everything already received, then close."""
        self._draining = True
        if self.transport is None or self.transport.is_closing():
            return
        if not self._busy and not self._buf:
            # Idle (or every buffered request already answered):
            # close() flushes any pending response bytes first.
            self.transport.close()


class AioReproServer:
    """The asyncio engine: sealed artifact plane + live dynamic path.

    Construct, then either :func:`run_aio` (blocking, with signal
    handling) or ``await server.start()`` inside an existing loop.

    Args:
        context: Shared pool/params/SLO context (same type the threaded
            engine uses).
        artifacts: The sealed store to serve; every artifact is
            precompiled to wire images here.
        host, port: Bind address (port 0 picks an ephemeral port).
        router: Route table for the dynamic path (default
            :func:`~repro.serve.handlers.build_router`).
        deadline_seconds: Wall-time budget per dynamic request.
        max_inflight: Dynamic requests allowed in flight before
            shedding with 503 (``/healthz`` and ``/metrics`` exempt).
        verbose: Log one access line per dynamic request.
        sock: Pre-bound listening socket (workers mode); overrides
            host/port.
    """

    def __init__(
        self,
        context: "ServeContext",
        artifacts: ArtifactStore,
        host: str = "127.0.0.1",
        port: int = 0,
        router: Router | None = None,
        deadline_seconds: float | None = None,
        max_inflight: int | None = None,
        verbose: bool = False,
        sock: socket.socket | None = None,
    ) -> None:
        self.context = context
        self.artifacts = artifacts
        self.router = router if router is not None else build_router()
        self.host = host
        self.port = port
        self.deadline_seconds = deadline_seconds
        self.max_inflight = max_inflight
        self.verbose = verbose
        self._sock = sock
        self._wire: dict[bytes, _Wire] = {}
        for artifact in artifacts:
            self._wire[artifact.path.encode("latin-1")] = _Wire(artifact)
        # Case-folded aliases for the common all-lowercase spelling of
        # scorecard paths; anything else resolves through the router.
        for artifact in artifacts:
            alias = artifact.path.lower().encode("latin-1")
            self._wire.setdefault(alias, self._wire[artifact.path.encode("latin-1")])
        self._connections: set[_AioProtocol] = set()
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._listener: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained: asyncio.Event | None = None
        self._inflight = 0
        self._executor = ThreadPoolExecutor(
            max_workers=8, thread_name_prefix="repro-aio-dyn"
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind (unless given a socket) and start accepting."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        if self._sock is not None:
            self._listener = await self._loop.create_server(
                lambda: _AioProtocol(self), sock=self._sock
            )
        else:
            self._listener = await self._loop.create_server(
                lambda: _AioProtocol(self), self.host, self.port, backlog=512
            )
        bound = self._listener.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        get_registry().gauge("serve.engine.asyncio").set(1)
        _LOG.info("serve.aio.listening", host=self.host, port=self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def initiate_shutdown(self) -> None:
        """Thread-safe graceful-drain trigger (signal handlers call this).

        Safe to call repeatedly and after the loop has already finished:
        a second SIGTERM (or a test teardown racing a completed drain)
        must never raise.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._begin_drain)
        except RuntimeError:  # loop closed between the check and the call
            pass

    def _begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        if self._listener is not None:
            self._listener.close()
        for protocol in list(self._connections):
            protocol.start_draining()
        self._check_drained()

    def _check_drained(self) -> None:
        if self._draining and not self._connections and not self._tasks:
            if self._drained is not None:
                self._drained.set()

    async def wait_drained(self, timeout: float | None = None) -> bool:
        """Await drain completion; True if fully drained in time."""
        assert self._drained is not None
        if timeout is None:
            await self._drained.wait()
            return True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def _close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
        for protocol in list(self._connections):
            if protocol.transport is not None:
                protocol.transport.close()
        self._executor.shutdown(wait=True)

    def _track(self, task: asyncio.Task) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._task_done)

    def _task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if not task.cancelled() and task.exception() is not None:
            _LOG.exception("serve.aio.task_error", task.exception())
        self._check_drained()

    # -- dynamic dispatch ----------------------------------------------------

    async def dispatch_dynamic(
        self,
        method: str,
        path: str,
        headers_blob: bytes,
        lower: bytes,
        close: bool,
    ) -> bytes:
        """Route + render one live request; returns full response bytes."""
        registry = get_registry()
        registry.counter("serve.requests").inc()
        rc = start_request_context(
            traceparent=_header_value(lower, b"traceparent"),
            request_id=_header_value(lower, b"x-request-id"),
            sample_rate=0.0,
            accept=_header_value(lower, b"accept") or "",
        )
        trace_headers = {
            "X-Request-Id": rc.request_id,
            "traceparent": rc.traceparent(),
        }
        t0 = time.perf_counter()
        try:
            route, path_params = self.router.match(method, path)
        except HTTPError as err:
            return _response_bytes(
                err.status,
                error_bytes(err.status, err.message, **err.extra),
                JSON_CONTENT_TYPE, None, err.headers, trace_headers, close,
            )

        # A routed request for a sealed artifact (case-folded path):
        # serve the canonical bytes, no handler.
        if route.cacheable:
            artifact = self.artifacts.find(route.name, path_params)
            if artifact is not None:
                registry.counter("serve.artifact.hit").inc()
                inm = _header_value(lower, b"if-none-match")
                if inm is not None and etag_matches(inm, artifact.etag):
                    registry.counter("serve.response.not_modified").inc()
                    return _response_bytes(
                        304, b"", artifact.content_type, artifact.etag,
                        None, trace_headers, close,
                    )
                return _response_bytes(
                    200, artifact.body, artifact.content_type, artifact.etag,
                    None, trace_headers, close,
                )

        shed_guarded = (
            self.max_inflight is not None and route.name not in _SHED_EXEMPT
        )
        if shed_guarded and self._inflight >= self.max_inflight:
            registry.counter("serve.requests.shed").inc()
            return _response_bytes(
                503, error_bytes(503, "server saturated; request shed"),
                JSON_CONTENT_TYPE, None, {"Retry-After": "1"},
                trace_headers, close,
            )

        if shed_guarded:
            self._inflight += 1
        try:
            status, body, content_type, etag, extra = await self._call_handler(
                route, path_params, rc, registry
            )
        finally:
            if shed_guarded:
                self._inflight -= 1

        duration = time.perf_counter() - t0
        slo = self.context.slo
        if slo is not None:
            slo.record(ok=status < 500, latency_seconds=duration)
        if self.verbose:
            _LOG.info(
                "serve.request.access",
                method=method, path=path, status=status,
                duration_ms=round(duration * 1e3, 2), endpoint=route.name,
            )
        return _response_bytes(
            status, body, content_type, etag, extra, trace_headers, close
        )

    async def _call_handler(
        self, route, path_params: dict[str, str], rc, registry
    ) -> tuple[int, bytes, str, str | None, dict[str, str] | None]:
        """Run the handler on the thread pool with the engine's hardening."""
        assert self._loop is not None
        deadline = self.deadline_seconds

        def call() -> tuple[int, bytes, str, str | None]:
            with use_context(rc):
                with registry.timer(f"serve.request.{route.name}").time():
                    with deadline_scope(deadline):
                        result = route.handler(self.context, **path_params)
            if isinstance(result, RawResponse):
                return result.status, result.body, result.content_type, None
            return 200, envelope_bytes(result), JSON_CONTENT_TYPE, None

        try:
            future = self._loop.run_in_executor(self._executor, call)
            if deadline is not None:
                status, body, content_type, etag = await asyncio.wait_for(
                    asyncio.shield(future), deadline
                )
            else:
                status, body, content_type, etag = await future
            return status, body, content_type, etag, None
        except HTTPError as err:
            return (
                err.status,
                error_bytes(err.status, err.message, **err.extra),
                JSON_CONTENT_TYPE, None, err.headers,
            )
        except asyncio.TimeoutError:
            registry.counter("serve.deadline.expired").inc()
            assert deadline is not None
            exc = DeadlineExpired(deadline)
            return (
                503, error_bytes(503, str(exc), reason="DeadlineExpired"),
                JSON_CONTENT_TYPE, None, {"Retry-After": "1"},
            )
        except (BreakerOpenError, PoolTimeoutError, DeadlineExpired) as exc:
            retry_after = max(1, math.ceil(getattr(exc, "retry_after", 1.0)))
            return (
                503,
                error_bytes(503, str(exc), reason=type(exc).__name__),
                JSON_CONTENT_TYPE, None, {"Retry-After": str(retry_after)},
            )
        except DatasetDegradedError as err:
            return (
                503,
                error_bytes(
                    503,
                    f"dataset {err.name!r} unavailable: {err.reason}",
                    reason="DatasetDegradedError", dataset=err.name,
                ),
                JSON_CONTENT_TYPE, None, None,
            )
        except Exception as exc:  # noqa: BLE001 - mapped to a 500 envelope
            registry.counter("serve.errors").inc()
            registry.counter(f"serve.errors.{route.name}").inc()
            _LOG.exception("serve.request.error", exc, endpoint=route.name)
            return (
                500, error_bytes(500, "internal server error"),
                JSON_CONTENT_TYPE, None, None,
            )


# -- entry points ------------------------------------------------------------


async def _amain(server: AioReproServer, handle_signals: bool) -> None:
    await server.start()
    loop = asyncio.get_running_loop()
    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.initiate_shutdown)
            except NotImplementedError:  # pragma: no cover - non-unix
                signal.signal(signum, lambda *_: server.initiate_shutdown())
    await server.wait_drained()
    await server._close()


def run_aio(server: AioReproServer, handle_signals: bool = True) -> None:
    """Serve until SIGTERM/SIGINT, answer everything accepted, return."""
    asyncio.run(_amain(server, handle_signals))


def _reuseport_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    if hasattr(socket, "SO_REUSEPORT"):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    sock.listen(512)
    sock.setblocking(False)
    return sock


def run_workers(
    make_server,
    workers: int,
    host: str,
    port: int,
    on_bound=None,
    max_restarts: int = 5,
    restart_window: float = 30.0,
    backoff_base: float = 0.1,
    backoff_cap: float = 5.0,
) -> int:
    """Pre-forked multi-worker serving with a supervising parent.

    Binds once in the parent (so an ephemeral port is resolved before
    forking and printed URLs are accurate), then forks *workers*
    children.  Worker 0 inherits the parent's socket; the rest bind
    fresh ``SO_REUSEPORT`` sockets on the same port so the kernel
    spreads accepts across them (platforms without ``SO_REUSEPORT``
    fall back to sharing the one inherited socket).  The parent forwards
    SIGTERM/SIGINT to every worker and waits for all of them to drain.

    The parent *supervises*: a worker that exits without a shutdown
    having been requested is respawned into its slot after a bounded
    exponential backoff (``backoff_base * 2^restarts``, capped at
    ``backoff_cap`` seconds), counted in ``serve.workers.restarted``.
    More than *max_restarts* exits inside any *restart_window*-second
    span means the fleet is crash-looping — the supervisor stops
    respawning, terminates the survivors, and raises ``SystemExit(1)``
    so the failure is loud instead of a silent capacity leak.

    Only the supervisor's own worker pids are ever reaped (per-pid
    ``waitpid(WNOHANG)`` polling, never ``wait()``): process-pool
    children spawned by builds stay untouched.

    Args:
        make_server: ``(sock) -> AioReproServer`` factory, called in
            each child **after** the fork (event loops must never cross
            a fork).
        workers: Child process count (>= 1).
        host, port: Bind address; port 0 resolves to an ephemeral port
            shared by every worker.
        on_bound: Optional ``(resolved_port) -> None`` called in the
            parent after binding, before forking (URL announcements).
        max_restarts: Worker exits tolerated per *restart_window*
            before the supervisor gives up.
        restart_window: Sliding window (seconds) for *max_restarts*.
        backoff_base: First-respawn delay per slot (seconds); doubles
            per subsequent restart of the same slot.
        backoff_cap: Upper bound on any respawn delay (seconds).

    Returns:
        The resolved port (useful when *port* was 0).

    Raises:
        SystemExit: code 1 when the crash-loop bound is exceeded.
    """
    sock0 = _reuseport_socket(host, port)
    resolved_port = sock0.getsockname()[1]
    if on_bound is not None:
        on_bound(resolved_port)
    reuseport = hasattr(socket, "SO_REUSEPORT")
    pids: dict[int, int] = {}  # live pid -> worker slot
    received: list[int] = []

    # The forwarder must be installed *before* the first fork: worker 0
    # can be serving (and a supervisor reacting to it) while the parent
    # is still forking the rest, and a SIGTERM in that window would hit
    # the default disposition and kill the parent without draining.
    def _forward(signum: int, _frame: object) -> None:
        received.append(signum)
        for child in list(pids):
            try:
                os.kill(child, signum)
            except ProcessLookupError:
                pass

    previous = {
        signum: signal.signal(signum, _forward)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }

    def _spawn(index: int) -> None:
        pid = os.fork()
        if pid == 0:  # child
            status = 0
            try:
                for signum in previous:  # inherited _forward is the
                    signal.signal(signum, signal.SIG_DFL)  # parent's
                if received:  # shutdown already requested pre-fork
                    os._exit(0)
                if index == 0 or not reuseport:
                    sock = sock0
                else:
                    sock0.close()
                    sock = _reuseport_socket(host, resolved_port)
                server = make_server(sock)
                run_aio(server)
            except BaseException:
                import traceback

                traceback.print_exc()
                status = 1
            finally:
                os._exit(status)
        pids[pid] = index

    def _terminate_all() -> None:
        for child in list(pids):
            try:
                os.kill(child, signal.SIGTERM)
            except ProcessLookupError:
                pass
        for child in list(pids):
            while True:
                try:
                    os.waitpid(child, 0)
                    break
                except InterruptedError:
                    continue
                except ChildProcessError:
                    break
            pids.pop(child, None)

    from collections import deque

    restart_times: deque[float] = deque()
    slot_restarts = [0] * workers
    pending: list[tuple[float, int]] = []  # (respawn due, worker slot)
    try:
        for index in range(workers):
            _spawn(index)
        # A signal handled mid-loop only reached the already-forked
        # subset; resend it now that every pid is known (children that
        # already got it shut down idempotently).
        for signum in list(received):
            _forward(signum, None)
        while pids or pending:
            if received:
                pending.clear()  # shutting down: no more respawns
                if not pids:
                    break
            reaped = False
            for pid in list(pids):
                try:
                    done, status = os.waitpid(pid, os.WNOHANG)
                except InterruptedError:
                    continue
                except ChildProcessError:
                    done, status = pid, 0
                if done == 0:
                    continue
                slot = pids.pop(pid)
                reaped = True
                if received:
                    continue  # expected exit during shutdown
                exitcode = os.waitstatus_to_exitcode(status)
                now = time.monotonic()
                restart_times.append(now)
                while restart_times and now - restart_times[0] > restart_window:
                    restart_times.popleft()
                if len(restart_times) > max_restarts:
                    _LOG.error(
                        "serve.workers.crash_loop",
                        exits=len(restart_times),
                        window_seconds=restart_window,
                        slot=slot,
                        exitcode=exitcode,
                    )
                    _terminate_all()
                    raise SystemExit(1)
                delay = min(
                    backoff_cap, backoff_base * (2 ** slot_restarts[slot])
                )
                slot_restarts[slot] += 1
                pending.append((now + delay, slot))
                _LOG.warning(
                    "serve.worker.exited",
                    slot=slot,
                    pid=pid,
                    exitcode=exitcode,
                    respawn_in_seconds=round(delay, 3),
                    restarts=slot_restarts[slot],
                )
            if not received:
                now = time.monotonic()
                for item in list(pending):
                    due, slot = item
                    if due <= now:
                        pending.remove(item)
                        _spawn(slot)
                        get_registry().counter("serve.workers.restarted").inc()
            if (pids or pending) and not reaped:
                time.sleep(0.05)
    finally:
        try:
            sock0.close()
        except OSError:
            pass
        for signum, handler in previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
    return resolved_port


def create_aio_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache=None,
    jobs: int = 1,
    params: dict[str, object] | None = None,
    verbose: bool = False,
    strict: bool = False,
    deadline_seconds: float | None = None,
    max_inflight: int | None = None,
    breaker=None,
    artifacts: ArtifactStore | None = None,
    context: "ServeContext | None" = None,
    sock: socket.socket | None = None,
) -> AioReproServer:
    """A ready AioReproServer with its artifact plane built (not started).

    Mirrors :func:`repro.serve.server.create_server` for the asyncio
    engine; building the store pays the scenario build (single-flight)
    unless *artifacts* (and *context*) are passed in prebuilt.
    """
    from repro.serve.artifacts import build_artifact_store
    from repro.serve.handlers import ServeContext
    from repro.serve.pool import ScenarioPool

    if context is None:
        pool = ScenarioPool(
            cache=cache, build_workers=jobs, strict=strict, breaker=breaker
        )
        context = ServeContext(pool=pool, params=dict(params or {}))
    if artifacts is None:
        artifacts = build_artifact_store(context, workers=jobs)
    return AioReproServer(
        context,
        artifacts,
        host=host,
        port=port,
        deadline_seconds=deadline_seconds,
        max_inflight=max_inflight,
        verbose=verbose,
        sock=sock,
    )
