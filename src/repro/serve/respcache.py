"""In-memory LRU cache of rendered API responses, keyed for determinism.

Every cacheable endpoint is a pure function of ``(scenario parameters,
endpoint name, path arguments)`` — the pipeline is deterministic end to
end — so the server renders each distinct response once, stamps it with
a strong ETag (SHA-256 of the body bytes, see
:func:`repro.serve.router.etag_for`), and replays the identical bytes
forever after.  Entries are immutable; eviction is least-recently-used
past **either** bound: a fixed entry-count capacity and an optional
total-body-bytes budget (``--response-cache-mb`` on the CLI), so a fan
of large responses cannot grow the cache without limit even while the
entry count stays small.

Eviction observability: every evicted entry bumps the
``serve.cache.evicted`` counter, and the ``serve.cache.bytes`` gauge
tracks the resident body bytes after every mutation.

The cache stores only *successful* responses: errors are cheap to
recompute and must never be pinned (a 404 for an exhibit id added later
would otherwise outlive the fix).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import get_registry


@dataclass(frozen=True, slots=True)
class CachedResponse:
    """One rendered response, ready to replay byte-for-byte."""

    body: bytes
    etag: str
    content_type: str
    status: int = 200


class ResponseCache:
    """Thread-safe LRU map from response keys to rendered responses.

    Args:
        capacity: Maximum entry count (must be positive).
        max_bytes: Optional budget for the sum of cached body bytes;
            ``None`` disables the byte bound.  A single entry larger
            than the whole budget is still admitted (correctness first:
            the alternative is re-rendering it on every request) but
            evicts everything else.
    """

    def __init__(self, capacity: int = 256, max_bytes: int | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CachedResponse]" = OrderedDict()
        self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Sum of cached body bytes currently resident."""
        with self._lock:
            return self._bytes

    def get(self, key: tuple) -> CachedResponse | None:
        """The cached response for *key* (refreshing its recency), or None."""
        with self._lock:
            response = self._entries.get(key)
            if response is not None:
                self._entries.move_to_end(key)
            return response

    def put(self, key: tuple, response: CachedResponse) -> None:
        """Insert (or refresh) *key*, evicting LRU entries past either bound."""
        with self._lock:
            previous = self._entries.get(key)
            if previous is not None:
                self._bytes -= len(previous.body)
            self._entries[key] = response
            self._entries.move_to_end(key)
            self._bytes += len(response.body)
            evicted = 0
            while len(self._entries) > self.capacity or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._entries) > 1
            ):
                _, victim = self._entries.popitem(last=False)
                self._bytes -= len(victim.body)
                evicted += 1
            registry = get_registry()
            if evicted:
                registry.counter("serve.cache.evicted").inc(evicted)
            registry.gauge("serve.cache.bytes").set(self._bytes)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            get_registry().gauge("serve.cache.bytes").set(0)
