"""In-memory LRU cache of rendered API responses, keyed for determinism.

Every cacheable endpoint is a pure function of ``(scenario parameters,
endpoint name, path arguments)`` — the pipeline is deterministic end to
end — so the server renders each distinct response once, stamps it with
a strong ETag (SHA-256 of the body bytes, see
:func:`repro.serve.router.etag_for`), and replays the identical bytes
forever after.  Entries are immutable; eviction is least-recently-used
beyond a fixed capacity.

The cache stores only *successful* responses: errors are cheap to
recompute and must never be pinned (a 404 for an exhibit id added later
would otherwise outlive the fix).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CachedResponse:
    """One rendered response, ready to replay byte-for-byte."""

    body: bytes
    etag: str
    content_type: str
    status: int = 200


class ResponseCache:
    """Thread-safe LRU map from response keys to rendered responses."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, CachedResponse]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> CachedResponse | None:
        """The cached response for *key* (refreshing its recency), or None."""
        with self._lock:
            response = self._entries.get(key)
            if response is not None:
                self._entries.move_to_end(key)
            return response

    def put(self, key: tuple, response: CachedResponse) -> None:
        """Insert (or refresh) *key*, evicting the LRU tail past capacity."""
        with self._lock:
            self._entries[key] = response
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
