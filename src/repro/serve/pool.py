"""Shared warm scenarios with single-flight build deduplication.

A server thread asking for a scenario must never trigger a build that
another thread is already paying for: with a cold pool and N concurrent
requests, exactly one thread (the *leader*) constructs and prebuilds the
``Scenario`` — ``build_all(max_workers=jobs)``, backed by the optional
persistent :class:`repro.exec.cache.DatasetCache` — while the other N-1
block on an event and then share the same object.  Each coalesced waiter
bumps ``serve.inflight.coalesced``; the build itself runs under the
``serve.pool.build`` timer.

A failed build is not cached: the leader publishes the exception to the
waiters already in flight (they re-raise it), then removes the entry so
the *next* request elects a fresh leader and retries.

Hardening (see ``docs/RELIABILITY.md``): builds run behind a
:class:`~repro.serve.breaker.CircuitBreaker` — after enough consecutive
failures the pool rejects immediately with
:class:`~repro.serve.breaker.BreakerOpenError` instead of queueing doomed
builds — and waiters bound their block on the caller's per-request
deadline (:mod:`repro.serve.deadline`), surfacing
:class:`PoolTimeoutError` when it expires.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.core.scenario import Scenario
from repro.obs import get_registry, timed
from repro.serve import deadline
from repro.serve.breaker import BreakerOpenError, CircuitBreaker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.cache import DatasetCache


class PoolTimeoutError(RuntimeError):
    """A waiter's per-request deadline expired before the build finished."""

    def __init__(self, budget: float):
        self.budget = budget
        super().__init__(
            f"scenario build still in flight after {budget:.1f}s deadline"
        )


def params_key(params: dict[str, object]) -> tuple:
    """The hashable pool/cache key for one scenario parameter set."""
    return tuple(sorted(params.items()))


class _Entry:
    """One pool slot: a scenario being built or ready (or failed)."""

    __slots__ = ("ready", "scenario", "error")

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.scenario: Scenario | None = None
        self.error: BaseException | None = None


class ScenarioPool:
    """One warm :class:`Scenario` per parameter set, shared across threads.

    Attributes:
        cache: Optional persistent dataset cache every pooled scenario
            builds through.
        build_workers: ``max_workers`` for the prebuild; 1 builds the
            datasets serially (identical output either way).
        strict: Scenario strictness for pooled builds.  ``False`` (the
            serving default) lets individual datasets degrade instead of
            failing the whole build; ``True`` restores fail-fast.
        breaker: The circuit breaker guarding builds; a default-config
            :class:`CircuitBreaker` unless the caller passes one.
    """

    def __init__(
        self,
        cache: "DatasetCache | None" = None,
        build_workers: int = 1,
        strict: bool = False,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.cache = cache
        self.build_workers = build_workers
        self.strict = strict
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._lock = threading.Lock()
        self._entries: dict[tuple, _Entry] = {}

    def __len__(self) -> int:
        """Scenarios currently warm (ready and not failed)."""
        with self._lock:
            return sum(
                1
                for entry in self._entries.values()
                if entry.ready.is_set() and entry.error is None
            )

    def seed(self, scenario: Scenario, **params: object) -> None:
        """Register an already-built scenario as warm for *params*.

        Lets the CLI (and tests) hand the pool a prebuilt world instead
        of paying a second build for the same parameter set.
        """
        entry = _Entry()
        entry.scenario = scenario
        entry.ready.set()
        with self._lock:
            self._entries[params_key(dict(params))] = entry
        self._update_warm_gauge()

    def get(self, **params: object) -> Scenario:
        """The warm scenario for *params*, building it at most once.

        Concurrent callers for the same key coalesce onto one build;
        callers for different keys build independently.
        """
        key = params_key(dict(params))
        with self._lock:
            entry = self._entries.get(key)
            leader = entry is None
            if leader:
                entry = self._entries[key] = _Entry()

        if leader:
            try:
                self.breaker.acquire()
            except BreakerOpenError as exc:
                self._abandon(key, entry, exc)
                raise
            try:
                scenario = timed(
                    "serve.pool.build", lambda: self._build(dict(params))
                )
            except BaseException as exc:
                self.breaker.record_failure()
                self._abandon(key, entry, exc)
                raise
            self.breaker.record_success()
            entry.scenario = scenario
            entry.ready.set()
            self._update_warm_gauge()
            return scenario

        if not entry.ready.is_set():
            get_registry().counter("serve.inflight.coalesced").inc()
            budget = deadline.remaining()
            if not entry.ready.wait(timeout=budget):
                assert budget is not None
                get_registry().counter("serve.deadline.expired").inc()
                raise PoolTimeoutError(budget)
        if entry.error is not None:
            raise entry.error
        assert entry.scenario is not None
        return entry.scenario

    def _abandon(self, key: tuple, entry: _Entry, exc: BaseException) -> None:
        """Publish *exc* to in-flight waiters, then drop the entry.

        Only a fresh leader may retry; the poisoned entry is removed
        unless someone already replaced it.
        """
        entry.error = exc
        entry.ready.set()
        with self._lock:
            if self._entries.get(key) is entry:
                del self._entries[key]

    def _update_warm_gauge(self) -> None:
        """Publish warm-scenario count (``serve.pool.warm``) for dashboards."""
        get_registry().gauge("serve.pool.warm").set(len(self))

    def degraded_datasets(self) -> list[str]:
        """Dataset names degraded in any warm scenario (sorted, unique)."""
        with self._lock:
            warm = [
                entry.scenario
                for entry in self._entries.values()
                if entry.ready.is_set() and entry.scenario is not None
            ]
        names: set[str] = set()
        for scenario in warm:
            names.update(d.name for d in scenario.degraded())
        return sorted(names)

    def _build(self, params: dict[str, object]) -> Scenario:
        scenario = Scenario(
            cache=self.cache, strict=self.strict, **params  # type: ignore[arg-type]
        )
        scenario.build_all(max_workers=self.build_workers)
        return scenario
