"""The precomputed static artifact plane behind :mod:`repro.serve`.

Every cacheable endpoint is a pure function of ``(scenario parameters,
endpoint, path args)``, so instead of rendering on demand and caching,
the whole response surface can be **materialised once at pool-build
time**: all 23 exhibits, the report, the narrative, the exhibit catalog,
and one scorecard per LACNIC country — 59 responses, well under 100 KB
total on default parameters.

:func:`build_artifact_store` renders each of them through the exact
handler + envelope code path the live server uses (so the bytes are
provably identical to what on-demand rendering would produce), stamps a
strong ETag (quoted SHA-256 of the body — the body's content address),
and seals the result into an immutable :class:`ArtifactStore`.  Both
engines consult it:

* the asyncio engine (:mod:`repro.serve.aio`) precompiles the store
  into full wire images and serves them zero-copy;
* the threaded engine treats it as a pre-warmed tier in front of its
  LRU response cache.

Because every artifact records its content address, a served byte
stream is traceable to its inputs: :meth:`ArtifactStore.manifest`
emits the ``repro.artifacts/1`` inventory (path, endpoint, sha256,
size) and a combined fingerprint over the whole plane.

Observability: the build runs under the ``serve.artifacts.build`` timer
and sets the ``serve.artifacts.count`` / ``serve.artifacts.bytes``
gauges; per-request hits are counted in ``serve.artifact.hit`` by the
engines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from types import MappingProxyType
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.obs import get_registry
from repro.serve.router import JSON_CONTENT_TYPE, envelope_bytes, etag_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.handlers import ServeContext

#: Schema identifier of the store manifest.
MANIFEST_SCHEMA = "repro.artifacts/1"


@dataclass(frozen=True, slots=True)
class Artifact:
    """One immutable pre-rendered response.

    Attributes:
        path: Canonical request path (``/v1/exhibit/fig01``).
        endpoint: Route name that produced it (``exhibit``).
        body: The exact response body bytes.
        etag: Strong ETag — quoted SHA-256 of *body*, the artifact's
            content address.
        content_type: Response media type.
    """

    path: str
    endpoint: str
    body: bytes
    etag: str
    content_type: str = JSON_CONTENT_TYPE

    @property
    def sha256(self) -> str:
        """The bare content address (the ETag without quotes)."""
        return self.etag.strip('"')


def static_surface() -> list[tuple[str, dict[str, str]]]:
    """Every ``(endpoint, path_params)`` the artifact plane materialises.

    The enumeration is closed because each parameterised route has a
    finite domain: exhibit ids come from the registry and scorecards
    exist only for LACNIC countries (everything else is a 404/422 error
    envelope, which stays on the live path).
    """
    from repro.core import exhibit_ids
    from repro.geo.countries import LACNIC_CODES

    surface: list[tuple[str, dict[str, str]]] = [
        ("exhibits", {}),
        ("report", {}),
        ("narrative", {}),
    ]
    surface += [("exhibit", {"exhibit_id": eid}) for eid in exhibit_ids()]
    surface += [("scorecard", {"country": code}) for code in LACNIC_CODES]
    return surface


def canonical_params(endpoint: str, params: dict[str, str]) -> dict[str, str]:
    """Path params normalised the way the handler would (case folding).

    Scorecard country codes are case-insensitive on the live path
    (``/v1/scorecard/ve`` == ``/v1/scorecard/VE``); the store keys
    artifacts by the canonical form so both spellings hit.
    """
    if endpoint == "scorecard":
        return {**params, "country": params["country"].upper()}
    return dict(params)


def path_for(endpoint: str, params: dict[str, str]) -> str:
    """The canonical request path for one static endpoint instance."""
    if endpoint == "exhibits":
        return "/v1/exhibits"
    if endpoint == "report":
        return "/v1/report"
    if endpoint == "narrative":
        return "/v1/narrative"
    if endpoint == "exhibit":
        return f"/v1/exhibit/{params['exhibit_id']}"
    if endpoint == "scorecard":
        return f"/v1/scorecard/{params['country']}"
    raise KeyError(f"not a static endpoint: {endpoint}")


def _params_key(params: dict[str, str]) -> tuple:
    return tuple(sorted(params.items()))


class ArtifactStore:
    """Sealed, content-addressed map of the full static response surface.

    Immutable after construction: the path and endpoint indexes are
    exposed through :class:`~types.MappingProxyType`, artifact bodies
    are ``bytes``, and there is deliberately no mutation API — a store
    is rebuilt, never patched, so a served byte stream always traces to
    exactly one build.
    """

    __slots__ = ("_by_path", "_by_endpoint", "scenario_key", "total_bytes")

    def __init__(
        self, artifacts: list[Artifact], scenario_key: tuple = ()
    ) -> None:
        by_path: dict[str, Artifact] = {}
        by_endpoint: dict[tuple, Artifact] = {}
        for artifact in artifacts:
            if artifact.path in by_path:
                raise ValueError(f"duplicate artifact path: {artifact.path}")
            by_path[artifact.path] = artifact
        for artifact in artifacts:
            # Endpoint index keyed by canonical params: the engines use
            # it to resolve case-folded lookups through the router.
            canonical = canonical_params(
                artifact.endpoint, _route_params(artifact)
            )
            by_endpoint[(artifact.endpoint, _params_key(canonical))] = artifact
        self._by_path: Mapping[str, Artifact] = MappingProxyType(by_path)
        self._by_endpoint: Mapping[tuple, Artifact] = MappingProxyType(
            by_endpoint
        )
        self.scenario_key = scenario_key
        self.total_bytes = sum(len(a.body) for a in artifacts)

    def __len__(self) -> int:
        return len(self._by_path)

    def __iter__(self) -> Iterator[Artifact]:
        return iter(self._by_path.values())

    def get(self, path: str) -> Artifact | None:
        """The artifact served at exactly *path*, or None."""
        return self._by_path.get(path)

    def find(self, endpoint: str, params: dict[str, str]) -> Artifact | None:
        """The artifact for a routed ``(endpoint, path_params)`` pair.

        Case-folds parameters the same way the live handler would, so a
        request the router matched always resolves to the same artifact
        the canonical path serves.
        """
        canonical = canonical_params(endpoint, params)
        return self._by_endpoint.get((endpoint, _params_key(canonical)))

    def fingerprint(self) -> str:
        """SHA-256 over every artifact's (path, content address), sorted.

        Two stores built from the same scenario parameters are
        guaranteed the same fingerprint; any byte of drift in any
        response changes it.
        """
        digest = hashlib.sha256()
        for path in sorted(self._by_path):
            artifact = self._by_path[path]
            digest.update(path.encode("utf-8"))
            digest.update(b"\0")
            digest.update(artifact.sha256.encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()

    def manifest(self) -> dict:
        """The ``repro.artifacts/1`` inventory of the sealed plane."""
        return {
            "schema": MANIFEST_SCHEMA,
            "count": len(self),
            "total_bytes": self.total_bytes,
            "fingerprint": self.fingerprint(),
            "artifacts": [
                {
                    "path": artifact.path,
                    "endpoint": artifact.endpoint,
                    "sha256": artifact.sha256,
                    "bytes": len(artifact.body),
                }
                for _, artifact in sorted(self._by_path.items())
            ],
        }


def _route_params(artifact: Artifact) -> dict[str, str]:
    """Recover the path params an artifact was rendered with."""
    if artifact.endpoint == "exhibit":
        return {"exhibit_id": artifact.path.rsplit("/", 1)[-1]}
    if artifact.endpoint == "scorecard":
        return {"country": artifact.path.rsplit("/", 1)[-1]}
    return {}


def build_artifact_store(
    context: "ServeContext", workers: int = 1
) -> ArtifactStore:
    """Materialise the full static response surface for *context*.

    Pays the (single-flight) scenario build if the pool is cold, then
    renders every static endpoint through the live handler + envelope
    path — in parallel on *workers* threads via the executor's
    :func:`repro.exec.parallel_map` when asked — and seals the result.

    Args:
        context: The server's shared context (pool + scenario params).
        workers: Threads for the render fan-out; 1 renders serially.
    """
    from repro.exec import parallel_map
    from repro.serve import handlers
    from repro.serve.pool import params_key

    registry = get_registry()
    handler_by_endpoint = {
        "exhibits": handlers.handle_exhibits,
        "report": handlers.handle_report,
        "narrative": handlers.handle_narrative,
        "exhibit": handlers.handle_exhibit,
        "scorecard": handlers.handle_scorecard,
    }

    def render(spec: tuple[str, dict[str, str]]) -> Artifact:
        endpoint, params = spec
        body = envelope_bytes(handler_by_endpoint[endpoint](context, **params))
        return Artifact(
            path=path_for(endpoint, params),
            endpoint=endpoint,
            body=body,
            etag=etag_for(body),
        )

    with registry.timer("serve.artifacts.build").time():
        context.scenario()  # warm the pool before fanning out renders
        artifacts = parallel_map(
            render, static_surface(), max_workers=workers,
            label="serve.artifacts.build",
        )
    store = ArtifactStore(artifacts, scenario_key=params_key(context.params))
    registry.gauge("serve.artifacts.count").set(len(store))
    registry.gauge("serve.artifacts.bytes").set(store.total_bytes)
    return store
