"""Routing table and the uniform JSON envelope for :mod:`repro.serve`.

Every API response is one of two shapes, both serialised by
:func:`to_json_bytes` (sorted keys, fixed separators) so identical
payloads always produce identical bytes — the property the response
cache's strong ETags and the byte-identity guarantees rest on::

    {"data": <payload>}                                  # success
    {"error": {"status": ..., "message": ..., ...}}      # failure

Handlers either return a payload ``dict`` (wrapped into the success
envelope) or a :class:`RawResponse` for non-JSON bodies (``/metrics``),
and signal failures by raising :class:`HTTPError` — the server turns
that into the error envelope with the same status code, so a typoed
exhibit id gets the CLI's did-you-mean treatment as structured JSON.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable

JSON_CONTENT_TYPE = "application/json; charset=utf-8"
TEXT_CONTENT_TYPE = "text/plain; charset=utf-8"


class HTTPError(Exception):
    """A handler-level failure carrying its HTTP status and envelope extras.

    Attributes:
        status: HTTP status code (404, 405, 422, ...).
        message: Human-readable one-liner for the envelope.
        headers: Extra response headers (``Retry-After`` on 503s).
        extra: Additional envelope fields (``hint``, ``known``, ...).
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: dict[str, str] | None = None,
        **extra: object,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.extra = extra


@dataclass(frozen=True, slots=True)
class RawResponse:
    """A non-JSON handler result (e.g. the text ``/metrics`` page)."""

    body: bytes
    content_type: str = TEXT_CONTENT_TYPE
    status: int = 200


#: A handler takes the server's context object plus captured path
#: parameters and returns a JSON payload dict or a RawResponse.
Handler = Callable[..., "dict | RawResponse"]


@dataclass(frozen=True, slots=True)
class Route:
    """One routable endpoint.

    Attributes:
        name: Short endpoint id; becomes the final segment of the
            ``serve.request.<name>`` timer, so it must satisfy the
            metric-segment grammar (lowercase ``[a-z][a-z0-9_]*``).
        method: Upper-case HTTP method the route answers.
        pattern: Path template, e.g. ``/v1/exhibit/{exhibit_id}`` —
            ``{param}`` segments capture into handler kwargs.
        handler: The endpoint implementation.
        cacheable: Whether responses may enter the LRU response cache
            (and therefore carry ETags).  Live views (``/healthz``,
            ``/metrics``) are not cacheable.
        accepts_body: Whether the server should read the request body
            (bounded by its size cap) and pass it to the handler as
            ``body=`` bytes plus the query string as a ``meta=`` dict.
            Only mutation endpoints (``POST /v1/ingest/...``) opt in;
            everything else has its body discarded unread.
    """

    name: str
    method: str
    pattern: str
    handler: Handler
    cacheable: bool = True
    accepts_body: bool = False
    segments: tuple[str, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        parts = tuple(s for s in self.pattern.split("/") if s)
        object.__setattr__(self, "segments", parts)

    def match(self, path_segments: tuple[str, ...]) -> dict[str, str] | None:
        """Captured params if *path_segments* matches, else None."""
        if len(path_segments) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for template, actual in zip(self.segments, path_segments):
            if template.startswith("{") and template.endswith("}"):
                params[template[1:-1]] = actual
            elif template != actual:
                return None
        return params


class Router:
    """Ordered route table with typed path parameters.

    Matching is exact on literal segments; a path that matches no
    route's shape raises a 404 :class:`HTTPError`, and a path that
    matches a route under a different method raises 405 (so ``POST
    /healthz`` is "method not allowed", not "no such page").
    """

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(
        self,
        name: str,
        method: str,
        pattern: str,
        handler: Handler,
        cacheable: bool = True,
        accepts_body: bool = False,
    ) -> Route:
        """Register and return a route."""
        route = Route(
            name, method.upper(), pattern, handler, cacheable, accepts_body
        )
        self._routes.append(route)
        return route

    def routes(self) -> list[Route]:
        return list(self._routes)

    def match(self, method: str, path: str) -> tuple[Route, dict[str, str]]:
        """The route and captured params for *method* *path*.

        Raises:
            HTTPError: 404 for an unknown path, 405 for a known path
                under the wrong method (with an ``allowed`` hint).
        """
        segments = tuple(s for s in path.split("/") if s)
        allowed: list[str] = []
        for route in self._routes:
            params = route.match(segments)
            if params is None:
                continue
            if route.method == method.upper():
                return route, params
            allowed.append(route.method)
        if allowed:
            raise HTTPError(
                405,
                f"method {method} not allowed for {path}",
                allowed=sorted(set(allowed)),
            )
        raise HTTPError(404, f"no route for {method} {path}")


def to_json_bytes(document: dict) -> bytes:
    """Deterministic JSON serialisation: same dict, same bytes, always."""
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def envelope_bytes(payload: dict) -> bytes:
    """The success envelope around a handler payload."""
    return to_json_bytes({"data": payload})


def error_bytes(status: int, message: str, **extra: object) -> bytes:
    """The error envelope (uniform across every failure path)."""
    return to_json_bytes({"error": {"status": status, "message": message, **extra}})


def etag_for(body: bytes) -> str:
    """Strong ETag for a response body: quoted SHA-256 of the bytes."""
    return '"' + hashlib.sha256(body).hexdigest() + '"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """Whether an ``If-None-Match`` header revalidates *etag*.

    Handles the ``*`` wildcard and comma-separated candidate lists; a
    weak-prefixed candidate (``W/"..."``) matches its strong form, which
    is valid for ``If-None-Match`` comparisons (RFC 9110 §8.8.3.2).
    """
    candidates = [c.strip() for c in if_none_match.split(",")]
    if "*" in candidates:
        return True
    return any(c == etag or c == f"W/{etag}" for c in candidates)
