"""Endpoint implementations behind the :mod:`repro.serve` router.

Each handler is a pure function of the shared warm scenario: it fetches
the world from the :class:`~repro.serve.pool.ScenarioPool` (paying a
single-flight build only on a cold pool) and returns a JSON payload
dict.  The server wraps payloads in the ``{"data": ...}`` envelope,
caches the rendered bytes, and stamps ETags — handlers never see HTTP.

Error semantics mirror the CLI exactly: an unknown exhibit id is a 404
with the same did-you-mean suggestion ``repro exhibit`` prints, and an
unknown or non-LACNIC scorecard country maps to 404/422 where the CLI
exits 2.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core import exhibit_ids, run_exhibit
from repro.core.exhibit import exhibit_catalog
from repro.core.narrative import all_findings, format_findings
from repro.core.report import render_report
from repro.core.scorecard import NonLacnicCountryError, build_scorecard
from repro.geo.countries import UnknownCountryError
from repro.obs import (
    SLOTracker,
    current_context,
    negotiates_openmetrics,
    render_metrics,
    render_openmetrics,
)
from repro.obs.openmetrics import CONTENT_TYPE as OPENMETRICS_CONTENT_TYPE
from repro.serve.pool import ScenarioPool
from repro.serve.router import HTTPError, RawResponse, Router

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scenario import Scenario


@dataclass
class ServeContext:
    """What every handler gets: pool, parameter set, and the SLO tracker.

    ``ingest`` is the durable ingestion front-end (a
    :class:`~repro.serve.ingestor.ServeIngestor`) when the server was
    started with ``--ingest-dir``; None keeps the API read-only and
    ``POST /v1/ingest`` answers 503.
    """

    pool: ScenarioPool
    params: dict[str, object] = field(default_factory=dict)
    slo: SLOTracker = field(default_factory=SLOTracker)
    ingest: object | None = None

    def scenario(self) -> "Scenario":
        """The shared warm scenario (single-flight build when cold)."""
        return self.pool.get(**self.params)


def _json_cell(value: object) -> object:
    """An exhibit cell as a JSON-safe scalar (rich types degrade to str)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def handle_exhibits(ctx: ServeContext) -> dict:
    """GET /v1/exhibits — the id/title catalog (shared with ``repro list``)."""
    return {"exhibits": exhibit_catalog()}


def handle_exhibit(ctx: ServeContext, exhibit_id: str) -> dict:
    """GET /v1/exhibit/{exhibit_id} — one exhibit's rows and rendering."""
    known = exhibit_ids()
    if exhibit_id not in known:
        hints = difflib.get_close_matches(exhibit_id, known, n=1, cutoff=0.4)
        extra: dict[str, object] = {"known": known}
        if hints:
            extra["hint"] = f"did you mean: {hints[0]}?"
        raise HTTPError(404, f"unknown exhibit: {exhibit_id}", **extra)
    exhibit = run_exhibit(ctx.scenario(), exhibit_id)
    return {
        "id": exhibit.exhibit_id,
        "title": exhibit.title,
        "columns": exhibit.columns(),
        "rows": [
            {key: _json_cell(value) for key, value in row.items()}
            for row in exhibit.rows
        ],
        "notes": exhibit.notes,
        "rendered": exhibit.render(),
    }


def handle_report(ctx: ServeContext) -> dict:
    """GET /v1/report — the full text report, byte-identical to the CLI."""
    return {"report": render_report(ctx.scenario())}


def handle_narrative(ctx: ServeContext) -> dict:
    """GET /v1/narrative — the computed headline findings."""
    findings = all_findings(ctx.scenario())
    return {
        "findings": [
            {"topic": finding.topic, "text": finding.text}
            for finding in findings
        ],
        "rendered": format_findings(findings),
    }


def handle_scorecard(ctx: ServeContext, country: str) -> dict:
    """GET /v1/scorecard/{country} — the five-panel regional scorecard."""
    try:
        scorecard = build_scorecard(ctx.scenario(), country)
    except UnknownCountryError:
        raise HTTPError(404, f"unknown country code: {country.upper()}") from None
    except NonLacnicCountryError as exc:
        raise HTTPError(422, str(exc)) from None
    payload = scorecard.to_dict()
    payload["rendered"] = scorecard.render()
    return payload


def handle_healthz(ctx: ServeContext) -> dict:
    """GET /healthz — liveness, pool warmth, and degradation state.

    Status ladder (see ``docs/RELIABILITY.md``):

    * ``unhealthy`` — the build circuit breaker is open; scenario
      requests are being rejected.
    * ``degraded`` — serving, but some warm scenario carries degraded
      datasets (or the breaker is probing half-open).
    * ``ok`` — everything available.
    """
    breaker_state = ctx.pool.breaker.state
    degraded = ctx.pool.degraded_datasets()
    if breaker_state == "open":
        status = "unhealthy"
    elif degraded or breaker_state == "half-open":
        status = "degraded"
    else:
        status = "ok"
    payload: dict[str, object] = {
        "status": status,
        "scenarios_warm": len(ctx.pool),
        "exhibits": len(exhibit_ids()),
        "breaker": breaker_state,
        "slo": ctx.slo.healthz_fields(),
    }
    if degraded:
        payload["degraded_datasets"] = degraded
    if ctx.ingest is not None:
        payload["ingest"] = ctx.ingest.status()
    return payload


def handle_ingest(
    ctx: ServeContext, format: str, body: bytes = b"", meta: dict | None = None
) -> dict:
    """POST /v1/ingest/{format} — journal one batch, at-least-once.

    The body is the batch (JSONL for row feeds, one whole dump for
    PeeringDB); query parameters become the batch ``meta`` (PeeringDB
    needs ``?month=YYYY-MM``).  The 2xx response is the journal receipt
    — by then the batch is fsync'd, so a crash cannot lose it and an
    identical retry is re-acked as a duplicate.

    Error mapping: 404 unknown format, 413 oversized body (from the
    server's cap), 422 invalid batch, 429 + ``Retry-After`` when the
    un-applied backlog is at its bound, 503 when ingestion is disabled.
    """
    from repro.ingest import ErrorBudgetExceeded
    from repro.ingest.formats import FORMATS
    from repro.ingest.service import IngestBacklogError, IngestValidationError

    if ctx.ingest is None:
        raise HTTPError(
            503,
            "ingestion disabled; start the server with --ingest-dir",
            reason="IngestDisabled",
        )
    if format not in FORMATS:
        raise HTTPError(
            404, f"unknown ingest format: {format}", known=sorted(FORMATS)
        )
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise HTTPError(422, f"body is not valid UTF-8: {exc}") from None
    try:
        receipt = ctx.ingest.submit(format, text.splitlines(), meta)
    except IngestBacklogError as exc:
        raise HTTPError(
            429,
            str(exc),
            headers={"Retry-After": str(exc.retry_after)},
            backlog=exc.backlog,
            limit=exc.limit,
        ) from None
    except (IngestValidationError, ErrorBudgetExceeded, ValueError) as exc:
        raise HTTPError(422, str(exc)) from None
    return receipt.to_dict()


def handle_metrics(ctx: ServeContext) -> RawResponse:
    """GET /metrics — the live ``repro.obs`` registry.

    Content-negotiated: an ``Accept`` header carrying
    ``application/openmetrics-text`` (what a Prometheus scraper sends)
    gets the spec-shaped OpenMetrics exposition; everything else keeps
    the human-readable text tables.
    """
    request = current_context()
    if request is not None and negotiates_openmetrics(request.accept):
        return RawResponse(
            render_openmetrics().encode("utf-8"),
            content_type=OPENMETRICS_CONTENT_TYPE,
        )
    body = render_metrics() or "(no metrics recorded)"
    return RawResponse(body.encode("utf-8") + b"\n")


def handle_slo(ctx: ServeContext) -> dict:
    """GET /v1/slo — rolling-window objectives, compliance, burn rates."""
    return ctx.slo.summary()


def build_router() -> Router:
    """The full API routing table."""
    router = Router()
    router.add("healthz", "GET", "/healthz", handle_healthz, cacheable=False)
    router.add("metrics", "GET", "/metrics", handle_metrics, cacheable=False)
    router.add("slo", "GET", "/v1/slo", handle_slo, cacheable=False)
    router.add("exhibits", "GET", "/v1/exhibits", handle_exhibits)
    router.add("exhibit", "GET", "/v1/exhibit/{exhibit_id}", handle_exhibit)
    router.add("report", "GET", "/v1/report", handle_report)
    router.add("narrative", "GET", "/v1/narrative", handle_narrative)
    router.add("scorecard", "GET", "/v1/scorecard/{country}", handle_scorecard)
    router.add(
        "ingest",
        "POST",
        "/v1/ingest/{format}",
        handle_ingest,
        cacheable=False,
        accepts_body=True,
    )
    return router
