"""Per-request deadlines as a thread-local scope.

The request handler opens a :func:`deadline_scope` around rendering; any
blocking wait underneath (the scenario pool's build wait, notably) calls
:func:`remaining` to bound its timeout instead of blocking forever.  A
request whose deadline expires surfaces :class:`DeadlineExpired`, which
the server maps to a 503 with ``Retry-After`` and counts in
``serve.deadline.expired``.

Thread-local, not contextvar: each HTTP request runs on its own
``ThreadingHTTPServer`` thread, and the waits consulting the deadline
run on that same thread.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import get_registry

_LOCAL = threading.local()


class DeadlineExpired(RuntimeError):
    """A request exceeded its deadline before its work completed."""

    def __init__(self, budget_seconds: float):
        self.budget_seconds = budget_seconds
        super().__init__(
            f"request deadline of {budget_seconds:.1f}s expired"
        )


@contextmanager
def deadline_scope(seconds: float | None) -> Iterator[None]:
    """Arm a deadline for the current thread; ``None`` disarms (no limit)."""
    previous = getattr(_LOCAL, "deadline", None)
    _LOCAL.deadline = (
        None if seconds is None else (time.monotonic() + seconds, seconds)
    )
    try:
        yield
    finally:
        _LOCAL.deadline = previous


def remaining() -> float | None:
    """Seconds left in the current request's deadline, or ``None``.

    Returns ``None`` when no deadline is armed (waits block freely).
    Raises nothing itself — an expired deadline returns ``0.0`` and the
    caller decides when to give up (see :func:`check`).
    """
    armed = getattr(_LOCAL, "deadline", None)
    if armed is None:
        return None
    expires_at, _budget = armed
    return max(0.0, expires_at - time.monotonic())


def check() -> None:
    """Raise :class:`DeadlineExpired` if the armed deadline has passed."""
    armed = getattr(_LOCAL, "deadline", None)
    if armed is None:
        return
    expires_at, budget = armed
    if time.monotonic() >= expires_at:
        get_registry().counter("serve.deadline.expired").inc()
        raise DeadlineExpired(budget)
