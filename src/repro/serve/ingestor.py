"""The serving side of durable ingestion: accept, apply, hot-swap.

:class:`ServeIngestor` glues the transport-agnostic
:class:`~repro.ingest.service.IngestService` to a live
:class:`~repro.serve.server.ReproServer`:

* ``submit`` journals the batch (the caller's 2xx receipt) and nudges
  the single background apply thread;
* the apply thread folds the whole journal into an overlay, rebuilds
  only the dirty partitions plus the sealed artifact store, and
  atomically swaps the server's :class:`ServingSurface` — the old
  generation keeps serving until the new fingerprint is ready, and the
  checkpoint commits only after the rebuild succeeded;
* an apply failure keeps the old surface and the journal intact
  (counted in ``ingest.apply.errors``): the batches stay acked and the
  next apply — or startup recovery — retries them.

One apply covers every batch journaled before it started (folding is
per-journal, not per-batch), so a burst of submissions coalesces into a
single rebuild the same way the scenario pool coalesces cold builds.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Iterable

from repro.ingest.service import ApplyResult, IngestService, Receipt, apply_ingest
from repro.obs import get_logger, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.cache import DatasetCache
    from repro.serve.server import ReproServer

_LOG = get_logger("repro.serve.ingestor")


class ServeIngestor:
    """Background journal application and surface hot-swap for one server."""

    def __init__(
        self,
        server: "ReproServer",
        service: IngestService,
        cache: "DatasetCache | None" = None,
        jobs: int = 1,
        strict: bool = False,
    ) -> None:
        self.server = server
        self.service = service
        self.cache = cache
        self.jobs = jobs
        self.strict = strict
        self._apply_lock = threading.Lock()
        self._wakeup = threading.Event()
        self._thread: threading.Thread | None = None

    # -- the transport-facing API (handle_ingest calls these) ----------------

    def status(self) -> dict:
        """The ``/healthz`` ingest section."""
        return self.service.status()

    def submit(
        self,
        format_name: str,
        lines: Iterable[str],
        meta: dict[str, str] | None = None,
    ) -> Receipt:
        """Journal one batch and schedule a background apply."""
        receipt = self.service.submit(format_name, lines, meta)
        self._schedule_apply()
        return receipt

    # -- application ---------------------------------------------------------

    def apply_now(self, force: bool = False) -> ApplyResult | None:
        """Apply the journal synchronously; None when nothing is pending.

        Serialised with the background thread: concurrent calls fold
        into one rebuild because the journal is re-read under the lock.
        *force* rebuilds even with an empty backlog — startup uses it to
        swap in the already-checkpointed journal the fresh base surface
        does not carry.
        """
        with self._apply_lock:
            if self.service.backlog() == 0 and not force:
                return None
            old = self.server.surface
            base_params = {
                key: value
                for key, value in old.context.params.items()
                if key != "overlay"
            }
            result = apply_ingest(
                self.service,
                self.cache,
                base_params,
                jobs=self.jobs,
                strict=self.strict,
            )
            context = result.context
            # The new generation inherits the serving identity that must
            # span swaps: the SLO window and this ingest front-end.
            context.slo = old.context.slo
            context.ingest = self
            self.server.swap_surface(context, result.store)
            return result

    def join(self, timeout: float | None = None) -> None:
        """Wait for the background apply thread to drain (tests, drills)."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def _schedule_apply(self) -> None:
        self._wakeup.set()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._apply_loop, name="serve-ingest-apply", daemon=True
            )
            self._thread.start()

    def _apply_loop(self) -> None:
        while self._wakeup.is_set():
            self._wakeup.clear()
            try:
                self.apply_now()
            except Exception as exc:
                # The old surface keeps serving and the journal keeps the
                # acked batches; the next submit (or restart) retries.
                get_registry().counter("ingest.apply.errors").inc()
                _LOG.exception("ingest.apply_failed", exc)
                return
