"""The threaded HTTP server wiring router, pool, and response cache.

Built on :class:`http.server.ThreadingHTTPServer` (stdlib only): each
connection is handled on its own thread, all threads share one
:class:`~repro.serve.pool.ScenarioPool` (so a cold burst coalesces onto
a single scenario build) and one
:class:`~repro.serve.respcache.ResponseCache` (so each distinct response
is rendered once and replayed byte-for-byte with a strong ETag).

Request observability (see ``docs/OBSERVABILITY.md``):

* ``serve.requests`` — every request hitting the dispatcher.
* ``serve.request.<endpoint>`` — per-endpoint latency timer.
* ``serve.cache.hit`` / ``serve.cache.miss`` — response-cache outcomes.
* ``serve.response.not_modified`` — 304 revalidations.
* ``serve.inflight.coalesced`` — requests that waited on another
  request's scenario build (recorded by the pool).
* ``serve.errors`` — handler crashes surfaced as 500 envelopes, plus a
  per-endpoint ``serve.errors.<endpoint>`` dimension.
* ``serve.requests.shed`` — requests refused with 503 under saturation.
* ``serve.inflight.current`` — gauge of requests currently in flight.
* ``serve.deadline.expired`` — requests whose per-request deadline ran
  out mid-wait.

Hardening (see ``docs/RELIABILITY.md``): an optional ``max_inflight``
bound sheds excess load with 503 + ``Retry-After`` (``/healthz`` and
``/metrics`` stay exempt so health is observable under saturation), an
optional per-request deadline bounds every blocking wait, the scenario
pool's circuit breaker surfaces as 503s while open, and a degraded
dataset behind an endpoint that cannot annotate coverage becomes a
structured 503 instead of a crash.

Shutdown is graceful by construction: :func:`run` converts SIGTERM and
SIGINT into ``server.shutdown()`` (stopping the accept loop) and then
``server_close()`` joins the in-flight handler threads, so every
accepted request is answered before the process exits and the CLI's
``--metrics-json`` artifact (written after :func:`run` returns) covers
the complete run.
"""

from __future__ import annotations

import math
import signal
import sys
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import urlsplit

from repro.core.degrade import DatasetDegradedError
from repro.obs import get_registry
from repro.serve.breaker import BreakerOpenError, CircuitBreaker
from repro.serve.deadline import DeadlineExpired, deadline_scope
from repro.serve.handlers import ServeContext, build_router
from repro.serve.pool import PoolTimeoutError, ScenarioPool, params_key
from repro.serve.respcache import CachedResponse, ResponseCache
from repro.serve.router import (
    JSON_CONTENT_TYPE,
    HTTPError,
    RawResponse,
    Router,
    envelope_bytes,
    error_bytes,
    etag_for,
    etag_matches,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.cache import DatasetCache


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the API's shared state."""

    daemon_threads = False  # server_close() must drain in-flight requests
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        context: ServeContext,
        router: Router | None = None,
        response_cache: ResponseCache | None = None,
        verbose: bool = False,
        deadline_seconds: float | None = None,
        max_inflight: int | None = None,
    ) -> None:
        self.context = context
        self.router = router if router is not None else build_router()
        self.response_cache = (
            response_cache if response_cache is not None else ResponseCache()
        )
        self.verbose = verbose
        #: Per-request wall-time budget; None disables deadlines.
        self.deadline_seconds = deadline_seconds
        #: Saturation bound: requests past this are shed with 503.
        #: ``/healthz`` and ``/metrics`` are exempt.
        self.inflight_limiter = (
            threading.BoundedSemaphore(max_inflight)
            if max_inflight is not None and max_inflight > 0
            else None
        )
        self._inflight_lock = threading.Lock()
        self._inflight_count = 0
        #: Scenario-parameter component of every response-cache key.
        self.scenario_key = params_key(context.params)
        super().__init__(address, _RequestHandler)

    def inflight_delta(self, delta: int) -> None:
        """Track in-flight requests into the ``serve.inflight.current`` gauge."""
        with self._inflight_lock:
            self._inflight_count += delta
            get_registry().gauge("serve.inflight.current").set(
                self._inflight_count
            )

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _RequestHandler(BaseHTTPRequestHandler):
    """Per-request dispatch: route, cache, ETag, envelope."""

    server: ReproServer  # narrowed for type checkers
    server_version = "repro-serve/1.0"
    # One request per connection: keep-alive would pin handler threads on
    # idle sockets and stall the drain in server_close().
    protocol_version = "HTTP/1.0"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- dispatch pipeline ---------------------------------------------------

    #: Endpoints exempt from load shedding: health must stay observable
    #: exactly when the server is saturated, and both render in-memory
    #: state without touching the pool.
    _SHED_EXEMPT = ("healthz", "metrics")

    def _dispatch(self, method: str) -> None:
        registry = get_registry()
        registry.counter("serve.requests").inc()
        path = urlsplit(self.path).path
        try:
            route, path_params = self.server.router.match(method, path)
        except HTTPError as err:
            self._send_error(err)
            return

        limiter = self.server.inflight_limiter
        shed_guarded = limiter is not None and route.name not in self._SHED_EXEMPT
        if shed_guarded and not limiter.acquire(blocking=False):
            registry.counter("serve.requests.shed").inc()
            self._send_error(
                HTTPError(
                    503,
                    "server saturated; request shed",
                    headers={"Retry-After": "1"},
                )
            )
            return
        self.server.inflight_delta(+1)
        try:
            self._handle_matched(route, path_params, registry)
        finally:
            self.server.inflight_delta(-1)
            if shed_guarded:
                limiter.release()

    def _handle_matched(self, route, path_params: dict[str, str], registry) -> None:
        # Render under the timer, write to the socket after it: every
        # metric for the request is recorded before the client can read
        # the body, so observers never see a completed response whose
        # instruments have not landed yet.
        try:
            with registry.timer(f"serve.request.{route.name}").time():
                with deadline_scope(self.server.deadline_seconds):
                    status, body, content_type, etag = self._render(
                        route, path_params
                    )
        except HTTPError as err:
            self._send_error(err)
            return
        except (BreakerOpenError, PoolTimeoutError, DeadlineExpired) as exc:
            retry_after = max(1, math.ceil(getattr(exc, "retry_after", 1.0)))
            self._send_error(
                HTTPError(
                    503,
                    str(exc),
                    headers={"Retry-After": str(retry_after)},
                    reason=type(exc).__name__,
                )
            )
            return
        except DatasetDegradedError as err:
            # Endpoints that can annotate coverage (report, scorecard)
            # never raise this; the rest degrade to a structured 503.
            self._send_error(
                HTTPError(
                    503,
                    f"dataset {err.name!r} unavailable: {err.reason}",
                    reason="DatasetDegradedError",
                    dataset=err.name,
                )
            )
            return
        except Exception:
            registry.counter("serve.errors").inc()
            registry.counter(f"serve.errors.{route.name}").inc()
            traceback.print_exc(file=sys.stderr)
            status, body, content_type, etag = (
                500,
                error_bytes(500, "internal server error"),
                JSON_CONTENT_TYPE,
                None,
            )
        try:
            if status == 304:
                self.send_response(304)
                self.send_header("ETag", etag or "")
                self.end_headers()
            else:
                self._send(status, body, content_type, etag)
        except BrokenPipeError:  # client went away mid-response
            pass

    def _render(
        self, route, path_params: dict[str, str]
    ) -> tuple[int, bytes, str, str | None]:
        if not route.cacheable:
            result = route.handler(self.server.context, **path_params)
            if isinstance(result, RawResponse):
                return result.status, result.body, result.content_type, None
            return 200, envelope_bytes(result), JSON_CONTENT_TYPE, None

        registry = get_registry()
        key = (
            self.server.scenario_key,
            route.name,
            tuple(sorted(path_params.items())),
        )
        cached = self.server.response_cache.get(key)
        if cached is None:
            registry.counter("serve.cache.miss").inc()
            payload = route.handler(self.server.context, **path_params)
            body = envelope_bytes(payload)
            cached = CachedResponse(
                body=body, etag=etag_for(body), content_type=JSON_CONTENT_TYPE
            )
            self.server.response_cache.put(key, cached)
        else:
            registry.counter("serve.cache.hit").inc()

        if_none_match = self.headers.get("If-None-Match")
        if if_none_match and etag_matches(if_none_match, cached.etag):
            registry.counter("serve.response.not_modified").inc()
            return 304, b"", cached.content_type, cached.etag
        return cached.status, cached.body, cached.content_type, cached.etag

    # -- response writing ----------------------------------------------------

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        etag: str | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, err: HTTPError) -> None:
        try:
            self._send(
                err.status,
                error_bytes(err.status, err.message, **err.extra),
                JSON_CONTENT_TYPE,
                extra_headers=err.headers,
            )
        except BrokenPipeError:  # client went away mid-response
            pass

    def log_message(self, format: str, *args: object) -> None:
        if self.server.verbose:
            super().log_message(format, *args)


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache: "DatasetCache | None" = None,
    jobs: int = 1,
    params: dict[str, object] | None = None,
    prebuild: bool = False,
    cache_capacity: int = 256,
    verbose: bool = False,
    strict: bool = False,
    deadline_seconds: float | None = None,
    max_inflight: int | None = None,
    breaker: CircuitBreaker | None = None,
) -> ReproServer:
    """A ready-to-serve :class:`ReproServer` (socket bound, not serving).

    Args:
        host: Bind address.
        port: Bind port; 0 picks an ephemeral one (``server.url`` has it).
        cache: Optional persistent dataset cache backing scenario builds.
        jobs: Worker threads for each pool scenario prebuild.
        params: Scenario parameter overrides shared by every endpoint.
        prebuild: Build the scenario before returning so the first
            request is warm (the ``repro serve`` default); False leaves
            the build to the first request (single-flight).
        cache_capacity: LRU response-cache capacity.
        verbose: Log one line per request to stderr.
        strict: Scenario strictness for pooled builds (lenient default:
            a broken dataset degrades instead of failing every request).
        deadline_seconds: Optional per-request wall-time budget.
        max_inflight: Optional load-shedding bound on concurrent
            requests (``/healthz`` and ``/metrics`` exempt).
        breaker: Optional preconfigured circuit breaker for the pool.
    """
    pool = ScenarioPool(
        cache=cache, build_workers=jobs, strict=strict, breaker=breaker
    )
    context = ServeContext(pool=pool, params=dict(params or {}))
    server = ReproServer(
        (host, port),
        context,
        response_cache=ResponseCache(capacity=cache_capacity),
        verbose=verbose,
        deadline_seconds=deadline_seconds,
        max_inflight=max_inflight,
    )
    if prebuild:
        context.scenario()
    return server


def run(server: ReproServer, handle_signals: bool = True) -> None:
    """Serve until SIGTERM/SIGINT, then drain in-flight requests.

    The signal handler only stops the accept loop (``shutdown()`` from a
    helper thread — it must not run on the serving thread); the drain
    happens in ``server_close()``, which joins every live handler thread
    before returning.  Callers that manage signals themselves (tests,
    embedding) pass ``handle_signals=False``.
    """
    previous: dict[int, object] = {}

    def _initiate_shutdown(signum: int, frame: object) -> None:
        threading.Thread(
            target=server.shutdown, name="serve-shutdown", daemon=True
        ).start()

    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _initiate_shutdown)
    try:
        server.serve_forever()
    finally:
        server.server_close()  # joins in-flight handler threads
        for signum, handler in previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
