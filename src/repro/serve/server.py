"""The threaded HTTP server wiring router, pool, and response cache.

Built on :class:`http.server.ThreadingHTTPServer` (stdlib only): each
connection is handled on its own thread, all threads share one
:class:`~repro.serve.pool.ScenarioPool` (so a cold burst coalesces onto
a single scenario build) and one
:class:`~repro.serve.respcache.ResponseCache` (so each distinct response
is rendered once and replayed byte-for-byte with a strong ETag).

Request observability (see ``docs/OBSERVABILITY.md``):

* ``serve.requests`` — every request hitting the dispatcher.
* ``serve.request.<endpoint>`` — per-endpoint latency timer.
* ``serve.cache.hit`` / ``serve.cache.miss`` — response-cache outcomes.
* ``serve.response.not_modified`` — 304 revalidations.
* ``serve.inflight.coalesced`` — requests that waited on another
  request's scenario build (recorded by the pool).
* ``serve.errors`` — handler crashes surfaced as 500 envelopes, plus a
  per-endpoint ``serve.errors.<endpoint>`` dimension.
* ``serve.requests.shed`` — requests refused with 503 under saturation.
* ``serve.inflight.current`` — gauge of requests currently in flight.
* ``serve.deadline.expired`` — requests whose per-request deadline ran
  out mid-wait.

Hardening (see ``docs/RELIABILITY.md``): an optional ``max_inflight``
bound sheds excess load with 503 + ``Retry-After`` (``/healthz`` and
``/metrics`` stay exempt so health is observable under saturation), an
optional per-request deadline bounds every blocking wait, the scenario
pool's circuit breaker surfaces as 503s while open, and a degraded
dataset behind an endpoint that cannot annotate coverage becomes a
structured 503 instead of a crash.

Shutdown is graceful by construction: :func:`run` converts SIGTERM and
SIGINT into ``server.shutdown()`` (stopping the accept loop) and then
``server_close()`` joins the in-flight handler threads, so every
accepted request is answered before the process exits and the CLI's
``--metrics-json`` artifact (written after :func:`run` returns) covers
the complete run.
"""

from __future__ import annotations

import math
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.core.degrade import DatasetDegradedError
from repro.obs import (
    get_logger,
    get_registry,
    get_tracer,
    new_span_id,
    start_request_context,
    use_context,
    write_trace_json,
)
from repro.serve.breaker import BreakerOpenError, CircuitBreaker
from repro.serve.deadline import DeadlineExpired, deadline_scope
from repro.serve.handlers import ServeContext, build_router
from repro.serve.pool import PoolTimeoutError, ScenarioPool, params_key
from repro.serve.respcache import CachedResponse, ResponseCache
from repro.serve.router import (
    JSON_CONTENT_TYPE,
    HTTPError,
    RawResponse,
    Router,
    envelope_bytes,
    error_bytes,
    etag_for,
    etag_matches,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.cache import DatasetCache
    from repro.serve.artifacts import ArtifactStore

#: Structured logger for the serving layer; every record emitted inside a
#: request scope carries that request's ``request_id``/``trace_id``.
_LOG = get_logger("repro.serve")

#: Bound on request bodies for routes that accept one (``/v1/ingest``);
#: larger submissions get 413 before a byte of the body is buffered.
MAX_BODY_BYTES = 32 * 1024 * 1024


class ServingSurface:
    """One immutable serving generation: context, sealed artifacts, key.

    The server holds exactly one reference to the current surface;
    swapping generations is a single attribute assignment (atomic under
    the GIL), and every request captures the surface once at dispatch —
    so a request either sees the whole old world or the whole new one,
    never a mix of contexts and artifact stores.
    """

    __slots__ = ("context", "artifacts", "scenario_key", "generation")

    def __init__(
        self,
        context: ServeContext,
        artifacts: "ArtifactStore | None" = None,
        generation: int = 0,
    ) -> None:
        self.context = context
        self.artifacts = artifacts
        self.scenario_key = params_key(context.params)
        self.generation = generation


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the API's shared state."""

    daemon_threads = False  # server_close() must drain in-flight requests
    allow_reuse_address = True
    # http.server's default backlog of 5 overflows under HTTP/1.0
    # reconnect churn (every request is a fresh connection); overflow
    # turns into multi-second SYN-retransmit tails on loopback.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        context: ServeContext,
        router: Router | None = None,
        response_cache: ResponseCache | None = None,
        verbose: bool = False,
        deadline_seconds: float | None = None,
        max_inflight: int | None = None,
        trace_sample_rate: float = 0.0,
        trace_dir: Path | None = None,
        artifacts: "ArtifactStore | None" = None,
    ) -> None:
        #: The current serving generation; replaced whole by
        #: :meth:`swap_surface` after an ingest apply.
        self.surface = ServingSurface(context, artifacts)
        self.router = router if router is not None else build_router()
        self.response_cache = (
            response_cache if response_cache is not None else ResponseCache()
        )
        self.verbose = verbose
        #: Per-request wall-time budget; None disables deadlines.
        self.deadline_seconds = deadline_seconds
        #: Head-sampling rate for per-request traces (0 disables).
        self.trace_sample_rate = trace_sample_rate
        #: Where sampled requests export their ``repro.trace/1`` artifact;
        #: None keeps spans in memory only.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        #: Saturation bound: requests past this are shed with 503.
        #: ``/healthz`` and ``/metrics`` are exempt.
        self.inflight_limiter = (
            threading.BoundedSemaphore(max_inflight)
            if max_inflight is not None and max_inflight > 0
            else None
        )
        self._inflight_lock = threading.Lock()
        self._inflight_count = 0
        super().__init__(address, _RequestHandler)

    # The surface's pieces, exposed under their historical names; reads
    # that must be generation-consistent capture ``self.surface`` once.

    @property
    def context(self) -> ServeContext:
        return self.surface.context

    @property
    def artifacts(self) -> "ArtifactStore | None":
        return self.surface.artifacts

    @property
    def scenario_key(self):
        """Scenario-parameter component of every response-cache key."""
        return self.surface.scenario_key

    def swap_surface(
        self, context: ServeContext, artifacts: "ArtifactStore | None"
    ) -> ServingSurface:
        """Atomically replace the serving surface with a new generation.

        The old surface keeps serving any request that captured it; new
        requests see the new one.  Response-cache entries need no flush:
        their keys embed the scenario key, which changes with the
        overlay.
        """
        surface = ServingSurface(
            context, artifacts, generation=self.surface.generation + 1
        )
        self.surface = surface
        registry = get_registry()
        registry.counter("serve.surface.swapped").inc()
        registry.gauge("serve.surface.generation").set(surface.generation)
        _LOG.info(
            "serve.surface.swapped",
            generation=surface.generation,
            artifacts=artifacts.fingerprint() if artifacts is not None else None,
        )
        return surface

    def inflight_delta(self, delta: int) -> None:
        """Track in-flight requests into the ``serve.inflight.current`` gauge."""
        with self._inflight_lock:
            self._inflight_count += delta
            get_registry().gauge("serve.inflight.current").set(
                self._inflight_count
            )

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _RequestHandler(BaseHTTPRequestHandler):
    """Per-request dispatch: route, cache, ETag, envelope."""

    server: ReproServer  # narrowed for type checkers
    server_version = "repro-serve/1.0"
    # One request per connection: keep-alive would pin handler threads on
    # idle sockets and stall the drain in server_close().
    protocol_version = "HTTP/1.0"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- dispatch pipeline ---------------------------------------------------

    #: Endpoints exempt from load shedding: health must stay observable
    #: exactly when the server is saturated, and both render in-memory
    #: state without touching the pool.
    _SHED_EXEMPT = ("healthz", "metrics")

    def _dispatch(self, method: str) -> None:
        # One TraceContext per request: an incoming ``traceparent`` is
        # honoured (the caller's trace continues here, their span id as
        # parent); otherwise a fresh trace starts and the head-sampling
        # rate decides whether spans are recorded.  The context is
        # ambient for the whole request, so pool builds, executor
        # workers, and every log line correlate automatically.
        rc = start_request_context(
            traceparent=self.headers.get("traceparent"),
            request_id=self.headers.get("X-Request-Id"),
            sample_rate=self.server.trace_sample_rate,
            accept=self.headers.get("Accept", ""),
        )
        if rc.remote:
            self._root_parent: str | None = rc.span_id
            rc = rc.child(new_span_id())
        else:
            self._root_parent = None
        self._trace_ctx = rc
        with use_context(rc):
            self._dispatch_in_context(method)

    def _dispatch_in_context(self, method: str) -> None:
        registry = get_registry()
        registry.counter("serve.requests").inc()
        # One surface per request: every lookup below (context,
        # artifacts, cache key) comes from this capture, so a
        # mid-request swap_surface() cannot mix generations.
        self._surface = self.server.surface
        parts = urlsplit(self.path)
        path = parts.path
        t0 = time.perf_counter()
        try:
            route, path_params = self.server.router.match(method, path)
            self._read_body(route, parts.query)
        except HTTPError as err:
            self._send_error(err)
            self._finish_request(method, path, None, err.status, t0)
            return

        limiter = self.server.inflight_limiter
        shed_guarded = limiter is not None and route.name not in self._SHED_EXEMPT
        if shed_guarded and not limiter.acquire(blocking=False):
            registry.counter("serve.requests.shed").inc()
            self._send_error(
                HTTPError(
                    503,
                    "server saturated; request shed",
                    headers={"Retry-After": "1"},
                )
            )
            self._finish_request(method, path, route, 503, t0)
            return
        self.server.inflight_delta(+1)
        try:
            status = self._handle_matched(route, path_params, registry)
        finally:
            self.server.inflight_delta(-1)
            if shed_guarded:
                limiter.release()
        self._finish_request(method, path, route, status, t0)

    def _handle_matched(self, route, path_params: dict[str, str], registry) -> int:
        # The request's root span: its id was already promised to the
        # client in the response ``traceparent`` (the ambient context's
        # span id), and its parent is the remote caller's span when one
        # came in.  Child spans — pool build, dataset builds on executor
        # threads — parent onto it through the ambient context.
        ctx = self._trace_ctx
        span = get_tracer().span(
            f"serve.request.{route.name}",
            span_id=ctx.span_id,
            parent_id=self._root_parent,
        )
        with span:
            status = self._render_and_send(route, path_params, registry)
        self._export_trace()
        return status

    def _render_and_send(self, route, path_params: dict[str, str], registry) -> int:
        # Render under the timer, write to the socket after it: every
        # metric for the request is recorded before the client can read
        # the body, so observers never see a completed response whose
        # instruments have not landed yet.
        try:
            with registry.timer(f"serve.request.{route.name}").time():
                with deadline_scope(self.server.deadline_seconds):
                    status, body, content_type, etag = self._render(
                        route, path_params
                    )
        except HTTPError as err:
            self._send_error(err)
            return err.status
        except (BreakerOpenError, PoolTimeoutError, DeadlineExpired) as exc:
            retry_after = max(1, math.ceil(getattr(exc, "retry_after", 1.0)))
            self._send_error(
                HTTPError(
                    503,
                    str(exc),
                    headers={"Retry-After": str(retry_after)},
                    reason=type(exc).__name__,
                )
            )
            return 503
        except DatasetDegradedError as err:
            # Endpoints that can annotate coverage (report, scorecard)
            # never raise this; the rest degrade to a structured 503.
            self._send_error(
                HTTPError(
                    503,
                    f"dataset {err.name!r} unavailable: {err.reason}",
                    reason="DatasetDegradedError",
                    dataset=err.name,
                )
            )
            return 503
        except Exception as exc:
            registry.counter("serve.errors").inc()
            registry.counter(f"serve.errors.{route.name}").inc()
            _LOG.exception(
                "serve.request.error",
                exc,
                endpoint=route.name,
                method=self.command,
                path=self.path,
            )
            status, body, content_type, etag = (
                500,
                error_bytes(500, "internal server error"),
                JSON_CONTENT_TYPE,
                None,
            )
        try:
            if status == 304:
                self.send_response(304)
                self.send_header("ETag", etag or "")
                for name, value in self._trace_headers().items():
                    self.send_header(name, value)
                self.end_headers()
            else:
                self._send(status, body, content_type, etag)
        except BrokenPipeError:  # client went away mid-response
            pass
        return status

    def _read_body(self, route, query: str) -> None:
        """Buffer the request body for routes that accept one.

        Non-body routes never read their body (HTTP/1.0, one request
        per connection — there is nothing after it on the socket).
        Oversized submissions fail fast with 413.
        """
        self._request_body = b""
        self._request_meta: dict[str, str] = {}
        if not route.accepts_body:
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise HTTPError(422, "unparseable Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise HTTPError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte bound",
            )
        self._request_body = self.rfile.read(length) if length > 0 else b""
        self._request_meta = {
            key: values[-1] for key, values in parse_qs(query).items()
        }

    def _finish_request(
        self, method: str, path: str, route, status: int, t0: float
    ) -> None:
        """Post-response bookkeeping: SLO observation and the access log."""
        duration = time.perf_counter() - t0
        slo = self._surface.context.slo
        if slo is not None:
            slo.record(ok=status < 500, latency_seconds=duration)
        if self.server.verbose:
            _LOG.info(
                "serve.request.access",
                method=method,
                path=path,
                status=status,
                duration_ms=round(duration * 1e3, 2),
                endpoint=route.name if route is not None else None,
            )

    def _export_trace(self) -> None:
        """Write the request's ``repro.trace/1`` artifact when sampled."""
        ctx = self._trace_ctx
        if not ctx.sampled or self.server.trace_dir is None:
            return
        spans = get_tracer().take_trace(ctx.trace_id)
        if not spans:
            return
        try:
            write_trace_json(
                self.server.trace_dir, ctx.trace_id, spans, ctx.request_id
            )
        except OSError as exc:
            _LOG.warning(
                "serve.trace.export_failed",
                trace_id=ctx.trace_id,
                error=str(exc),
            )

    def _render(
        self, route, path_params: dict[str, str]
    ) -> tuple[int, bytes, str, str | None]:
        surface = self._surface
        if not route.cacheable:
            kwargs: dict[str, object] = dict(path_params)
            if route.accepts_body:
                kwargs["body"] = self._request_body
                kwargs["meta"] = self._request_meta
            result = route.handler(surface.context, **kwargs)
            if isinstance(result, RawResponse):
                return result.status, result.body, result.content_type, None
            return 200, envelope_bytes(result), JSON_CONTENT_TYPE, None

        registry = get_registry()
        if surface.artifacts is not None:
            # The sealed plane serves the whole static surface; the LRU
            # below only ever sees responses the store does not carry.
            artifact = surface.artifacts.find(route.name, path_params)
            if artifact is not None:
                registry.counter("serve.artifact.hit").inc()
                if_none_match = self.headers.get("If-None-Match")
                if if_none_match and etag_matches(if_none_match, artifact.etag):
                    registry.counter("serve.response.not_modified").inc()
                    return 304, b"", artifact.content_type, artifact.etag
                return 200, artifact.body, artifact.content_type, artifact.etag

        key = (
            surface.scenario_key,
            route.name,
            tuple(sorted(path_params.items())),
        )
        cached = self.server.response_cache.get(key)
        if cached is None:
            registry.counter("serve.cache.miss").inc()
            payload = route.handler(surface.context, **path_params)
            body = envelope_bytes(payload)
            cached = CachedResponse(
                body=body, etag=etag_for(body), content_type=JSON_CONTENT_TYPE
            )
            self.server.response_cache.put(key, cached)
        else:
            registry.counter("serve.cache.hit").inc()

        if_none_match = self.headers.get("If-None-Match")
        if if_none_match and etag_matches(if_none_match, cached.etag):
            registry.counter("serve.response.not_modified").inc()
            return 304, b"", cached.content_type, cached.etag
        return cached.status, cached.body, cached.content_type, cached.etag

    # -- response writing ----------------------------------------------------

    def _trace_headers(self) -> dict[str, str]:
        """The correlation headers every response carries."""
        ctx = getattr(self, "_trace_ctx", None)
        if ctx is None:
            return {}
        return {"X-Request-Id": ctx.request_id, "traceparent": ctx.traceparent()}

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str,
        etag: str | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        for name, value in self._trace_headers().items():
            self.send_header(name, value)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, err: HTTPError) -> None:
        try:
            self._send(
                err.status,
                error_bytes(err.status, err.message, **err.extra),
                JSON_CONTENT_TYPE,
                extra_headers=err.headers,
            )
        except BrokenPipeError:  # client went away mid-response
            pass

    def log_message(self, format: str, *args: object) -> None:
        # The structured access log in _finish_request replaces the
        # stdlib's per-request stderr line; the raw http.server chatter
        # (send_response, send_error) survives only at debug level.
        if self.server.verbose:
            _LOG.debug("serve.http.line", message=format % args)


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    cache: "DatasetCache | None" = None,
    jobs: int = 1,
    params: dict[str, object] | None = None,
    prebuild: bool = False,
    cache_capacity: int = 256,
    cache_max_bytes: int | None = None,
    verbose: bool = False,
    strict: bool = False,
    deadline_seconds: float | None = None,
    max_inflight: int | None = None,
    breaker: CircuitBreaker | None = None,
    trace_sample_rate: float = 0.0,
    trace_dir: Path | None = None,
    artifacts: bool = False,
    ingest_dir: Path | str | None = None,
    ingest_max_backlog: int | None = None,
) -> ReproServer:
    """A ready-to-serve :class:`ReproServer` (socket bound, not serving).

    Args:
        host: Bind address.
        port: Bind port; 0 picks an ephemeral one (``server.url`` has it).
        cache: Optional persistent dataset cache backing scenario builds.
        jobs: Worker threads for each pool scenario prebuild.
        params: Scenario parameter overrides shared by every endpoint.
        prebuild: Build the scenario before returning so the first
            request is warm (the ``repro serve`` default); False leaves
            the build to the first request (single-flight).
        cache_capacity: LRU response-cache capacity (entries).
        cache_max_bytes: Optional LRU budget on cached body bytes
            (``--response-cache-mb`` on the CLI); None disables it.
        verbose: Log one line per request to stderr.
        strict: Scenario strictness for pooled builds (lenient default:
            a broken dataset degrades instead of failing every request).
        deadline_seconds: Optional per-request wall-time budget.
        max_inflight: Optional load-shedding bound on concurrent
            requests (``/healthz`` and ``/metrics`` exempt).
        breaker: Optional preconfigured circuit breaker for the pool.
        trace_sample_rate: Fraction of requests whose spans are recorded
            (deterministic head sampling on the trace id; 0 disables).
        trace_dir: Directory sampled requests export ``repro.trace/1``
            artifacts into; None keeps spans in memory.
        artifacts: Build the sealed static artifact plane up front and
            serve the whole cacheable surface from it (implies paying
            the scenario build, like ``prebuild``); False keeps the
            historical render-on-demand + LRU behaviour.
        ingest_dir: Journal directory enabling ``POST /v1/ingest``;
            startup replays the journal and, when acked batches are
            still unapplied, applies them (rebuilding dirty partitions
            and swapping the surface) before the socket starts serving.
            None keeps the API read-only.
        ingest_max_backlog: Bound on acked-but-unapplied batches before
            submissions get 429 (default
            :data:`repro.ingest.service.DEFAULT_MAX_BACKLOG`).
    """
    pool = ScenarioPool(
        cache=cache, build_workers=jobs, strict=strict, breaker=breaker
    )
    context = ServeContext(pool=pool, params=dict(params or {}))
    store = None
    if artifacts:
        from repro.serve.artifacts import build_artifact_store

        store = build_artifact_store(context, workers=jobs)
    server = ReproServer(
        (host, port),
        context,
        response_cache=ResponseCache(
            capacity=cache_capacity, max_bytes=cache_max_bytes
        ),
        verbose=verbose,
        deadline_seconds=deadline_seconds,
        max_inflight=max_inflight,
        trace_sample_rate=trace_sample_rate,
        trace_dir=trace_dir,
        artifacts=store,
    )
    if ingest_dir is not None:
        from repro.ingest.service import DEFAULT_MAX_BACKLOG, IngestService
        from repro.serve.ingestor import ServeIngestor

        service = IngestService(
            ingest_dir,
            max_backlog=(
                ingest_max_backlog
                if ingest_max_backlog is not None
                else DEFAULT_MAX_BACKLOG
            ),
            strict=strict,
        )
        ingestor = ServeIngestor(
            server, service, cache=cache, jobs=jobs, strict=strict
        )
        context.ingest = ingestor
        if service.backlog() > 0:
            # Startup recovery: acked-but-unapplied batches (a crash
            # between journal and checkpoint) are applied before the
            # first request, swapping in a surface that covers the
            # whole journal.
            ingestor.apply_now()
        elif service.wal.last_seq > 0:
            # Everything is checkpointed, but the base surface built
            # above does not carry the journal: swap in the overlay
            # world now (the fast path — shards come from the cache).
            ingestor.apply_now(force=True)
    if prebuild and store is None:
        context.scenario()
    return server


def run(server: ReproServer, handle_signals: bool = True) -> None:
    """Serve until SIGTERM/SIGINT, then drain in-flight requests.

    The signal handler only stops the accept loop (``shutdown()`` from a
    helper thread — it must not run on the serving thread); the drain
    happens in ``server_close()``, which joins every live handler thread
    before returning.  Callers that manage signals themselves (tests,
    embedding) pass ``handle_signals=False``.
    """
    previous: dict[int, object] = {}

    def _initiate_shutdown(signum: int, frame: object) -> None:
        threading.Thread(
            target=server.shutdown, name="serve-shutdown", daemon=True
        ).start()

    if handle_signals:
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _initiate_shutdown)
    try:
        server.serve_forever()
    finally:
        server.server_close()  # joins in-flight handler threads
        for signum, handler in previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
