"""Circuit breaker around scenario builds (see ``docs/RELIABILITY.md``).

A classic three-state breaker:

* **closed** — requests flow; consecutive build failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the
  breaker rejects immediately with :class:`BreakerOpenError` (callers
  translate that into a 503 with ``Retry-After``), sparing the server
  from queueing doomed builds behind a broken generator or disk.
* **half-open** — after ``recovery_time`` seconds, exactly one probe
  request is let through; success closes the breaker, failure re-opens
  it and restarts the clock.

Metrics: ``breaker.opened`` (close→open transitions), ``breaker.rejected``
(calls refused while open), ``breaker.probes`` (half-open trials), and
the ``breaker.state`` gauge (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs import get_logger, get_registry

#: Gauge encoding of the breaker state.
_STATE_VALUES = {"closed": 0, "half-open": 1, "open": 2}

_LOG = get_logger("repro.serve.breaker")


class BreakerOpenError(RuntimeError):
    """The circuit is open: the protected operation was not attempted."""

    def __init__(self, retry_after: float):
        self.retry_after = max(0.0, retry_after)
        super().__init__(
            f"circuit breaker open; retry in {self.retry_after:.1f}s"
        )


class CircuitBreaker:
    """Thread-safe circuit breaker for one protected operation.

    Args:
        failure_threshold: Consecutive failures that open the circuit.
            The default (3) sits above the pool tests' worst case of two
            consecutive seeded failures, so existing retry-on-next-call
            semantics are preserved for isolated errors.
        recovery_time: Seconds the circuit stays open before admitting a
            half-open probe.
        clock: Injectable time source for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_in_flight = False

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (time-aware)."""
        with self._lock:
            return self._observed_state()

    def _observed_state(self) -> str:
        # Caller holds the lock.
        if self._state == "open" and (
            self._clock() - self._opened_at >= self.recovery_time
        ):
            return "half-open"
        return self._state

    def _set_gauge(self, state: str) -> None:
        get_registry().gauge("breaker.state").set(_STATE_VALUES[state])

    # -- the protected call path --------------------------------------------

    def acquire(self) -> None:
        """Admission control: raise :class:`BreakerOpenError` or admit.

        Half-open admits exactly one probe; concurrent callers during the
        probe are rejected as if the circuit were still open.
        """
        with self._lock:
            state = self._observed_state()
            if state == "closed":
                return
            if state == "half-open" and not self._probe_in_flight:
                self._probe_in_flight = True
                self._state = "half-open"
                self._set_gauge("half-open")
                get_registry().counter("breaker.probes").inc()
                return
            get_registry().counter("breaker.rejected").inc()
            remaining = self.recovery_time - (self._clock() - self._opened_at)
            raise BreakerOpenError(retry_after=remaining)

    def record_success(self) -> None:
        """The protected operation succeeded: close and reset."""
        with self._lock:
            was_open = self._state != "closed"
            self._failures = 0
            self._probe_in_flight = False
            self._state = "closed"
            self._set_gauge("closed")
        if was_open:
            _LOG.info("breaker.closed", reason="probe succeeded")

    def record_failure(self) -> None:
        """The protected operation failed: count, maybe open."""
        with self._lock:
            self._failures += 1
            self._probe_in_flight = False
            opened = False
            if self._state == "half-open" or self._failures >= self.failure_threshold:
                opened = self._state != "open"
                self._state = "open"
                self._opened_at = self._clock()
                self._set_gauge("open")
                get_registry().counter("breaker.opened").inc()
            failures = self._failures
        if opened:
            _LOG.warning(
                "breaker.opened",
                consecutive_failures=failures,
                recovery_seconds=self.recovery_time,
            )
